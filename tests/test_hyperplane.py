"""Tests for the Hyperplane algorithm (Algorithm 1, Theorems V.1/V.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CartesianGrid,
    HyperplaneMapper,
    NodeAllocation,
    evaluate_mapping,
    nearest_neighbor,
    nearest_neighbor_with_hops,
)
from repro.core.hyperplane import find_split, preferred_dimension_order


class TestPreferredOrder:
    def test_smallest_score_first(self):
        # hops stencil: dimension 0 is heavily used, cut dimension 1 first
        scores = nearest_neighbor_with_hops(2).alignment_scores()
        assert preferred_dimension_order([50, 48], scores) == [1, 0]

    def test_tie_broken_by_size(self):
        scores = nearest_neighbor(2).alignment_scores()
        assert preferred_dimension_order([50, 48], scores) == [0, 1]
        assert preferred_dimension_order([48, 50], scores) == [1, 0]

    def test_component_prefers_silent_dimension(self):
        # component(2) only communicates along dim 0 -> cut dim 1 first...
        # scores: dim0 = 2.0, dim1 = 0.0
        from repro import component

        scores = component(2).alignment_scores()
        assert preferred_dimension_order([10, 10], scores)[0] == 1


class TestFindSplit:
    def test_center_split_even(self):
        scores = (1.0, 1.0)
        i, d1, d2 = find_split([4, 4], scores, 4, 16)
        assert d1 + d2 == 4
        assert {d1, d2} == {2}

    def test_split_respects_divisibility(self):
        # total=24, n=8: a split of dims [6, 4] must give sides % 8 == 0
        scores = (1.0, 1.0)
        i, d1, d2 = find_split([6, 4], scores, 8, 24)
        slab = 24 // [6, 4][i]
        assert (d1 * slab) % 8 == 0 and (d2 * slab) % 8 == 0

    def test_none_when_impossible(self):
        # total=9 cells, n=5: no split produces multiples of 5
        assert find_split([3, 3], (1.0, 1.0), 5, 9) is None

    @given(
        st.integers(2, 12),  # C (number of node-multiples)
        st.integers(1, 9),   # n
        st.integers(1, 3),   # extra factor to vary shapes
    )
    @settings(max_examples=100)
    def test_theorem_v2_balance(self, c, n, extra):
        """When n | total and total >= 2n, the found split satisfies
        1/2 <= |g'|/|g''| <= 1 (Theorem V.2)."""
        total = c * n * extra
        # build dims from the factorisation of total
        from repro.grid.dims import dims_create

        dims = list(dims_create(total, 2))
        split = find_split(dims, (1.0, 1.0), n, total)
        if total < 2 * n:
            return
        assert split is not None, "Theorem V.1: a split must exist"
        i, d1, d2 = split
        slab = total // dims[i]
        small, large = sorted([d1 * slab, d2 * slab])
        assert small + large == total
        assert small * 2 >= large  # ratio >= 1/2


class TestMapping:
    def test_contiguous_nodes_form_rectangles_on_divisible_grid(self):
        """On 4x4 with n=4 each node should own a 2x2 block."""
        grid = CartesianGrid([4, 4])
        alloc = NodeAllocation.homogeneous(4, 4)
        perm = HyperplaneMapper().map_ranks(grid, nearest_neighbor(2), alloc)
        cost = evaluate_mapping(grid, nearest_neighbor(2), perm, alloc)
        # 2x2 blocks: 4 cut links per inner boundary: Jsum = 2*(2*4) = 16
        assert cost.jsum == 16
        assert cost.jmax == 4

    def test_recursion_depth_logarithmic(self):
        """Large instance completes fast: O(log N) levels only."""
        grid = CartesianGrid([64, 64])
        alloc = NodeAllocation.homogeneous(128, 32)
        perm = HyperplaneMapper().map_ranks(grid, nearest_neighbor(2), alloc)
        assert len(set(perm.tolist())) == grid.size

    def test_non_divisible_process_count_falls_back(self):
        """p not a multiple of n still yields a valid mapping."""
        grid = CartesianGrid([7, 5])
        alloc = NodeAllocation.for_total(35, 8)  # 4 full nodes + 3 rest
        perm = HyperplaneMapper().map_ranks(grid, nearest_neighbor(2), alloc)
        assert sorted(perm.tolist()) == list(range(35))

    def test_node_size_strategies(self):
        alloc = NodeAllocation([4, 8, 12])
        assert HyperplaneMapper().node_size(alloc) == 8
        assert HyperplaneMapper("min").node_size(alloc) == 4
        assert HyperplaneMapper("max").node_size(alloc) == 12

    def test_homogeneous_node_size(self):
        alloc = NodeAllocation.homogeneous(3, 7)
        assert HyperplaneMapper("max").node_size(alloc) == 7

    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            HyperplaneMapper("median")

    def test_repr(self):
        assert "mean" in repr(HyperplaneMapper())

    def test_ablation_flag_changes_result_on_anisotropic_stencil(self):
        grid = CartesianGrid([50, 48])
        alloc = NodeAllocation.homogeneous(50, 48)
        stencil = nearest_neighbor_with_hops(2)
        with_order = HyperplaneMapper().map_ranks(grid, stencil, alloc)
        without = HyperplaneMapper(use_stencil_order=False).map_ranks(
            grid, stencil, alloc
        )
        c1 = evaluate_mapping(grid, stencil, with_order, alloc)
        c2 = evaluate_mapping(grid, stencil, without, alloc)
        # Equation 2 ordering must help on the hops stencil
        assert c1.jsum < c2.jsum
