"""Property-based tests of the neighbour-exchange data plane."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CartesianGrid
from repro.mpisim.neighbor import neighbor_alltoall

from .conftest import grids, stencils_for


@given(grids(max_ndim=3, max_size=80), st.data())
@settings(max_examples=40, deadline=None)
def test_conservation(grid, data):
    """Every payload is delivered exactly once or dropped at a boundary.

    The multiset of delivered values equals the multiset of sent values
    whose target stays inside the grid.
    """
    stencil = data.draw(stencils_for(grid.ndim))
    p, k = grid.size, stencil.k
    send = np.arange(p * k, dtype=np.float64).reshape(p, k, 1)
    recv, valid = neighbor_alltoall(grid, stencil, send, fill_value=np.nan)

    delivered = sorted(recv[valid][:, 0].tolist())
    expected = []
    for u in range(p):
        for j, off in enumerate(stencil.offsets):
            if grid.shift(u, off) is not None:
                expected.append(float(send[u, j, 0]))
    assert delivered == sorted(expected)


@given(grids(max_ndim=2, max_size=64), st.data())
@settings(max_examples=30, deadline=None)
def test_periodic_grid_loses_nothing(grid, data):
    """On fully periodic grids every slot is valid."""
    periodic = CartesianGrid(grid.dims, periods=[True] * grid.ndim)
    stencil = data.draw(stencils_for(grid.ndim))
    send = np.ones((periodic.size, stencil.k, 1))
    _, valid = neighbor_alltoall(periodic, stencil, send)
    assert valid.all()


@given(grids(max_ndim=2, max_size=64), st.data())
@settings(max_examples=30, deadline=None)
def test_pairing_inverse(grid, data):
    """recv[u, j] originates from shift(u, -R_j) when that rank exists."""
    stencil = data.draw(stencils_for(grid.ndim))
    p, k = grid.size, stencil.k
    send = np.empty((p, k, 1))
    send[:, :, 0] = np.arange(p)[:, None]  # payload = sender rank
    recv, valid = neighbor_alltoall(grid, stencil, send, fill_value=-1.0)
    for u in range(p):
        for j, off in enumerate(stencil.offsets):
            src = grid.shift(u, [-c for c in off])
            if src is None:
                assert not valid[u, j]
                assert recv[u, j, 0] == -1.0
            else:
                assert valid[u, j]
                assert recv[u, j, 0] == src


@given(grids(max_ndim=2, max_size=48), st.data())
@settings(max_examples=25, deadline=None)
def test_exchange_preserves_dtype_and_shape(grid, data):
    stencil = data.draw(stencils_for(grid.ndim))
    shape = (grid.size, stencil.k, 2, 3)
    send = np.zeros(shape, dtype=np.float32)
    recv, valid = neighbor_alltoall(grid, stencil, send)
    assert recv.shape == shape
    assert recv.dtype == np.float32
    assert valid.shape == (grid.size, stencil.k)
