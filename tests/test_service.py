"""The standing sweep service: daemon, job lifecycle, service backend.

Covers the acceptance criteria of the service tier: two clients
submitting sweeps concurrently to one daemon (a real subprocess, with a
real worker subprocess) both receive results byte-identical to serial
``evaluate_batch``; a higher-priority job's shards are scheduled ahead
of a lower-priority job's remaining shards; cancelling one job does not
disturb the other.  Also: the shared-secret handshake on cluster and
service connections, worker reconnect after a coordinator restart,
``run_stream`` ordering/early-exit across thread, process and service
backends, and the ``submit``/``status``/``cancel``/``cache`` CLI verbs.
"""

from __future__ import annotations

import json
import signal
import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import (
    CartesianGrid,
    ClusterBackend,
    EvaluationEngine,
    InstanceSpec,
    ServiceBackend,
    ServiceClient,
    ServiceDaemon,
    ServiceError,
    SweepSpec,
    nearest_neighbor,
    resolve_backend,
    run,
    run_stream,
)
from repro.engine import Backend
from repro.engine.cluster.protocol import (
    AUTH,
    CHALLENGE,
    GET,
    SECRET_ENV,
    SHARD,
    SHUTDOWN,
    RESULT,
    WELCOME,
    auth_digest,
    hello,
    recv_message,
    resolve_secret,
    send_message,
)
from repro.engine.cluster.worker import run_worker
from repro.service import parse_service_spec

from .test_backends import _requests, _signature
from .test_cluster import _spawn_worker, _worker_env


@pytest.fixture(scope="module")
def serial_results():
    return EvaluationEngine(max_workers=1).evaluate_batch(_requests())


def _spawn_daemon(*extra: str) -> tuple[subprocess.Popen, int]:
    """A serve-jobs daemon subprocess; returns it plus its bound port."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.experiments",
            "serve-jobs",
            "--bind",
            "127.0.0.1:0",
            *extra,
        ],
        env=_worker_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 60
    while True:
        line = proc.stdout.readline()
        if "listening on" in line:
            port = int(line.rsplit(":", 1)[1])
            return proc, port
        if not line or time.monotonic() > deadline:  # pragma: no cover
            proc.kill()
            raise RuntimeError(f"daemon did not come up: {line!r}")


def _stop_daemon(proc: subprocess.Popen) -> int:
    proc.send_signal(signal.SIGINT)
    code = proc.wait(timeout=30)
    proc.stdout.close()
    return code


@pytest.fixture(scope="module")
def service():
    """One daemon subprocess plus one real (serial) worker subprocess."""
    daemon, port = _spawn_daemon()
    worker = _spawn_worker(port)
    yield port
    assert _stop_daemon(daemon) == 0
    assert worker.wait(timeout=30) == 0  # SHUTDOWN reached the worker


class _FakeServiceWorker:
    """A hand-driven worker for deterministic scheduling assertions."""

    def __init__(self, port: int, secret: str | None = None):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)
        send_message(self.sock, hello({"fake": True}))
        reply = recv_message(self.sock)
        if reply is not None and reply[0] == CHALLENGE:
            send_message(self.sock, (AUTH, auth_digest(secret or "", reply[1])))
            reply = recv_message(self.sock)
        assert reply is not None and reply[0] == WELCOME, reply

    def pull(self) -> tuple:
        send_message(self.sock, (GET,))
        message = recv_message(self.sock)
        assert message is not None and message[0] == SHARD, message
        return message

    def finish(self, shard_id: int, items: list) -> None:
        send_message(
            self.sock,
            (RESULT, shard_id, [f"payload-{shard_id}" for _ in items]),
        )

    def close(self) -> None:
        self.sock.close()


# ----------------------------------------------------------------------
# The service backend against a real daemon + worker (subprocesses)
# ----------------------------------------------------------------------
class TestServiceBackend:
    def test_satisfies_protocol(self):
        backend = ServiceBackend("127.0.0.1", 1)  # constructing never connects
        assert isinstance(backend, Backend)
        backend.close()

    def test_batch_byte_identical_to_serial(self, service, serial_results):
        with ServiceBackend("127.0.0.1", service) as backend:
            results = backend.evaluate_batch(_requests())
        assert list(map(_signature, results)) == list(
            map(_signature, serial_results)
        )

    def test_stream_byte_identical_to_serial(self, service, serial_results):
        with ServiceBackend("127.0.0.1", service) as backend:
            streamed = list(backend.evaluate_stream(_requests()))
        assert sorted(map(_signature, streamed)) == sorted(
            map(_signature, serial_results)
        )

    def test_results_keep_original_requests_and_tags(self, service):
        marker = object()  # unpicklable payloads must never cross the wire
        requests = _requests(tagger=lambda i, name: (i, name, marker))
        with ServiceBackend("127.0.0.1", service) as backend:
            results = backend.evaluate_batch(requests)
        assert all(r.request is req for r, req in zip(results, requests))
        assert all(r.request.tag[2] is marker for r in results)

    def test_empty_batch(self, service):
        with ServiceBackend("127.0.0.1", service) as backend:
            assert backend.evaluate_batch([]) == []

    def test_two_concurrent_clients_byte_identical(
        self, service, serial_results
    ):
        """Acceptance: two clients, one daemon, both sweeps byte-exact."""
        boxes: list[dict] = [{}, {}]

        def client(box: dict, priority: int) -> None:
            try:
                with ServiceBackend(
                    "127.0.0.1", service, priority=priority
                ) as backend:
                    box["results"] = backend.evaluate_batch(_requests())
            except Exception as exc:  # pragma: no cover - surfaced below
                box["error"] = exc

        threads = [
            threading.Thread(target=client, args=(boxes[0], 0)),
            threading.Thread(target=client, args=(boxes[1], 5)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        assert not any(t.is_alive() for t in threads)
        assert not any("error" in box for box in boxes), boxes
        for box in boxes:
            assert list(map(_signature, box["results"])) == list(
                map(_signature, serial_results)
            )

    def test_sweep_api_through_spec_string(self, service):
        """resolve_backend("service:...") drops into repro.run unchanged."""
        spec = SweepSpec(
            instances=[InstanceSpec.from_nodes(4, 8)],
            stencils=["nearest_neighbor"],
            mappers=["blocked", "hyperplane"],
        )
        local = run(spec).to_rows()
        remote = run(spec, backend=f"service:127.0.0.1:{service}").to_rows()
        assert remote == local

    def test_weighted_metric_byte_identical_to_serial(self, service):
        from .test_backends import _weighted_requests

        with EvaluationEngine(max_workers=1) as engine:
            serial = engine.evaluate_batch(_weighted_requests())
        with ServiceBackend("127.0.0.1", service) as backend:
            results = backend.evaluate_batch(_weighted_requests())
        assert list(map(_signature, results)) == list(map(_signature, serial))
        assert any(r.metrics for r in results)


# ----------------------------------------------------------------------
# Job lifecycle against a real daemon subprocess, hand-driven worker
# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def job_daemon():
    """A daemon subprocess with no real workers (tests drive their own)."""
    daemon, port = _spawn_daemon()
    yield port
    assert _stop_daemon(daemon) == 0


class TestJobLifecycle:
    def test_priority_ahead_of_remaining_shards(self, job_daemon):
        """Acceptance: a later, higher-priority job's shards are handed
        to workers before the earlier job's remaining shards."""
        client = ServiceClient("127.0.0.1", job_daemon)
        worker = _FakeServiceWorker(job_daemon)
        low = client.submit(
            [[("low", i)] for i in range(3)], priority=0, label="low"
        )
        high = None
        try:
            first = worker.pull()  # holds one low shard mid-"evaluation"
            assert first[1] in low.shard_ids
            high = client.submit(
                [[("high", i)] for i in range(2)], priority=5, label="high"
            )
            order = []
            for _ in range(4):
                message = worker.pull()
                order.append("high" if message[1] in high.shard_ids else "low")
                worker.finish(message[1], message[2])
            worker.finish(first[1], first[2])
            assert order == ["high", "high", "low", "low"]
            assert len(list(high.results())) == 2
            assert len(list(low.results())) == 3
        finally:
            worker.close()
            low.close()
            if high is not None:
                high.close()

    def test_cancel_one_job_leaves_the_other(self, job_daemon):
        """Acceptance: cancelling one job does not disturb the other."""
        client = ServiceClient("127.0.0.1", job_daemon)
        worker = _FakeServiceWorker(job_daemon)
        doomed = client.submit([[("doomed", i)] for i in range(2)], label="doomed")
        kept = client.submit([[("kept", 0)]], label="kept")
        try:
            assert client.cancel(doomed.job_id) is True
            # The worker only ever sees the surviving job's shard.
            message = worker.pull()
            assert message[1] in kept.shard_ids
            worker.finish(message[1], message[2])
            assert len(list(kept.results())) == 1
            with pytest.raises(ServiceError, match="cancelled"):
                list(doomed.results())
            states = {r["job"]: r["state"] for r in client.status()}
            assert states[doomed.job_id] == "cancelled"
            assert states[kept.job_id] == "done"
        finally:
            worker.close()
            doomed.close()
            kept.close()

    def test_cancel_unknown_job_is_false(self, job_daemon):
        client = ServiceClient("127.0.0.1", job_daemon)
        assert client.cancel("job-999999") is False

    def test_status_single_job_and_fields(self, job_daemon):
        client = ServiceClient("127.0.0.1", job_daemon)
        handle = client.submit([[("s", 0)]], priority=3, label="fields")
        try:
            (record,) = client.status(handle.job_id)
            assert record["state"] == "queued"  # no worker pulled it yet
            assert record["priority"] == 3
            assert record["label"] == "fields"
            assert record["shards"] == 1
            assert record["completed"] == 0
            assert record["submitted_at"] > 0
            assert record["age"] >= 0.0  # monotonic queue age
            assert client.status("job-999999") == []
        finally:
            assert client.cancel(handle.job_id) is True
            handle.close()

    def test_empty_job_is_done_immediately(self, job_daemon):
        client = ServiceClient("127.0.0.1", job_daemon)
        with client.submit([]) as handle:
            assert handle.shard_ids == []
            assert list(handle.results()) == []
        (record,) = client.status(handle.job_id)
        assert record["state"] == "done"


class TestDaemonLifecycle:
    def test_client_disconnect_cancels_its_jobs(self):
        with ServiceDaemon("127.0.0.1", 0, heartbeat_timeout=2.0) as daemon:
            client = ServiceClient("127.0.0.1", daemon.port)
            handle = client.submit([[("x", 0)]], label="abandoned")
            handle.close()  # walk away without draining
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                (record,) = daemon.jobs(handle.job_id)
                if record["state"] == "cancelled":
                    break
                time.sleep(0.1)
            assert record["state"] == "cancelled"
            # the daemon is unharmed: a fresh job still completes
            worker = _FakeServiceWorker(daemon.port)
            fresh = client.submit([[("y", 0)]])
            message = worker.pull()
            worker.finish(message[1], message[2])
            assert len(list(fresh.results())) == 1
            worker.close()
            fresh.close()

    def test_daemon_close_fails_open_jobs(self):
        daemon = ServiceDaemon("127.0.0.1", 0, heartbeat_timeout=6.0)
        client = ServiceClient("127.0.0.1", daemon.port)
        handle = client.submit([[("x", 0)]], label="orphaned")
        daemon.close()
        with pytest.raises(ServiceError, match="shut down|closed|lost"):
            list(handle.results())
        handle.close()

    def test_plain_cluster_coordinator_rejects_clients(self):
        with ClusterBackend("127.0.0.1", 0, heartbeat_timeout=6.0) as backend:
            client = ServiceClient("127.0.0.1", backend.port)
            with pytest.raises(ServiceError, match="serve-jobs"):
                client.status()


# ----------------------------------------------------------------------
# Shared-secret handshake (cluster and service connections)
# ----------------------------------------------------------------------
class TestSharedSecret:
    def test_worker_with_matching_secret_serves_sweep(self, serial_results):
        with ClusterBackend(
            "127.0.0.1", 0, heartbeat_timeout=6.0, secret="tops3cret"
        ) as backend:
            box: dict = {}

            def serve() -> None:
                box["code"] = run_worker(
                    f"127.0.0.1:{backend.port}",
                    backend_spec="serial",
                    secret="tops3cret",
                    log=lambda *_: None,
                )

            worker = threading.Thread(target=serve)
            worker.start()
            results = backend.evaluate_batch(_requests())
            backend.close()
            worker.join(timeout=30)
        assert box["code"] == 0
        assert list(map(_signature, results)) == list(
            map(_signature, serial_results)
        )

    def test_worker_with_wrong_secret_rejected(self):
        with ClusterBackend(
            "127.0.0.1", 0, heartbeat_timeout=6.0, secret="tops3cret"
        ) as backend:
            logged: list[str] = []
            code = run_worker(
                f"127.0.0.1:{backend.port}",
                backend_spec="serial",
                secret="wrong",
                log=logged.append,
            )
        assert code == 2
        assert any("authentication failed" in line for line in logged)

    def test_worker_without_secret_rejected(self):
        with ClusterBackend(
            "127.0.0.1", 0, heartbeat_timeout=6.0, secret="tops3cret"
        ) as backend:
            logged: list[str] = []
            code = run_worker(
                f"127.0.0.1:{backend.port}",
                backend_spec="serial",
                log=logged.append,
            )
        assert code == 2
        assert any("requires a shared secret" in line for line in logged)

    def test_service_client_secrets(self):
        with ServiceDaemon(
            "127.0.0.1", 0, heartbeat_timeout=6.0, secret="tops3cret"
        ) as daemon:
            with pytest.raises(ServiceError, match="requires a shared secret"):
                ServiceClient("127.0.0.1", daemon.port).status()
            with pytest.raises(ServiceError, match="authentication failed"):
                ServiceClient("127.0.0.1", daemon.port, secret="bad").status()
            client = ServiceClient(
                "127.0.0.1", daemon.port, secret="tops3cret"
            )
            assert client.status() == []

    def test_resolve_secret_precedence(self, monkeypatch):
        monkeypatch.delenv(SECRET_ENV, raising=False)
        assert resolve_secret(None) is None
        assert resolve_secret("s") == "s"
        monkeypatch.setenv(SECRET_ENV, "from-env")
        assert resolve_secret(None) == "from-env"
        assert resolve_secret("explicit") == "explicit"
        assert resolve_secret("") == "from-env" or resolve_secret("") is None
        monkeypatch.setenv(SECRET_ENV, "")
        assert resolve_secret(None) is None

    def test_subprocess_worker_env_secret(self, serial_results):
        """A real worker subprocess authenticates via the env variable."""
        with ClusterBackend(
            "127.0.0.1", 0, heartbeat_timeout=6.0, secret="envsecret"
        ) as backend:
            env = _worker_env()
            env[SECRET_ENV] = "envsecret"
            worker = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.engine.cluster.worker",
                    "--connect",
                    f"127.0.0.1:{backend.port}",
                    "--backend",
                    "serial",
                    "--connect-timeout",
                    "30",
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            results = backend.evaluate_batch(_requests())
            backend.close()
        assert list(map(_signature, results)) == list(
            map(_signature, serial_results)
        )
        assert worker.wait(timeout=30) == 0


# ----------------------------------------------------------------------
# Worker reconnect after a coordinator restart
# ----------------------------------------------------------------------
class _FlakyCoordinator:
    """Accepts twice: drops the first connection abruptly, then SHUTDOWNs."""

    def __init__(self, drop_first: bool = True):
        self.listener = socket.socket()
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(2)
        self.port = self.listener.getsockname()[1]
        self.accepts = 0
        self.drop_first = drop_first
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _recv_until(self, conn: socket.socket, kind: str) -> None:
        while True:
            message = recv_message(conn)
            if message is None or message[0] == kind:
                return

    def _serve(self) -> None:
        conn, _ = self.listener.accept()
        self.accepts += 1
        recv_message(conn)  # HELLO
        send_message(conn, (WELCOME, {"heartbeat_interval": 1.0}))
        self._recv_until(conn, GET)
        conn.close()  # abrupt: no SHUTDOWN — a crashed/restarted daemon
        if not self.drop_first:
            return
        conn, _ = self.listener.accept()
        self.accepts += 1
        recv_message(conn)  # HELLO
        send_message(conn, (WELCOME, {"heartbeat_interval": 1.0}))
        self._recv_until(conn, GET)
        send_message(conn, (SHUTDOWN,))
        self._recv_until(conn, "never")  # drain until the worker closes

    def close(self) -> None:
        self.listener.close()


class TestWorkerReconnect:
    def test_reconnects_after_coordinator_restart(self):
        fake = _FlakyCoordinator()
        logged: list[str] = []
        try:
            code = run_worker(
                f"127.0.0.1:{fake.port}",
                backend_spec="serial",
                reconnect_timeout=30.0,
                log=logged.append,
            )
        finally:
            fake.close()
        assert code == 0  # the *second* connection delivered SHUTDOWN
        assert fake.accepts == 2
        assert any("reconnecting" in line for line in logged)

    def test_reconnect_disabled_exits_on_loss(self):
        fake = _FlakyCoordinator(drop_first=False)
        try:
            code = run_worker(
                f"127.0.0.1:{fake.port}",
                backend_spec="serial",
                reconnect_timeout=0.0,
                log=lambda *_: None,
            )
        finally:
            fake.close()
        assert code == 1
        assert fake.accepts == 1


# ----------------------------------------------------------------------
# run_stream ordering and early-consumer exit, across backends
# ----------------------------------------------------------------------
def _stream_spec() -> SweepSpec:
    return SweepSpec(
        instances=[InstanceSpec.from_nodes(n, 8) for n in (4, 6)],
        stencils=["nearest_neighbor"],
        mappers=["blocked", "hyperplane", "stencil_strips"],
    )


def _row_key(row):
    return (row.instance, row.stencil, row.mapper)


class TestRunStream:
    @pytest.fixture(params=["thread:2", "process:2", "service"])
    def stream_backend(self, request):
        if request.param == "service":
            port = request.getfixturevalue("service")
            yield f"service:127.0.0.1:{port}"
        else:
            yield request.param

    def test_rows_arrive_per_shard_and_cover_the_spec(self, stream_backend):
        from repro import ResultSet

        spec = _stream_spec()
        key = lambda r: (r["instance"], r["stencil"], r["mapper"])  # noqa: E731
        expected = sorted(run(spec).to_rows(), key=key)
        streamed = list(run_stream(spec, backend=stream_backend))
        assert all(row.ok for row in streamed)
        # Completion order may differ from spec order; coverage and
        # values must not.
        assert sorted(ResultSet(streamed).to_rows(), key=key) == expected

    def test_early_consumer_exit_cancels_cleanly(self, stream_backend):
        spec = _stream_spec()
        stream = run_stream(spec, backend=stream_backend)
        first = next(stream)
        stream.close()  # the consumer walks away mid-sweep
        assert first.instance  # a real row arrived before the exit
        # The backend (and for service: the daemon) survives — the same
        # spec still runs to completion afterwards.
        results = run(spec, backend=stream_backend)
        assert all(row.ok for row in results.rows)

    def test_service_jobs_all_terminal_after_early_exit(self, service):
        """Closing the stream cancels the job daemon-side (no zombie
        jobs holding queue slots)."""
        spec = _stream_spec()
        stream = run_stream(spec, backend=f"service:127.0.0.1:{service}")
        next(stream)
        stream.close()
        client = ServiceClient("127.0.0.1", service)
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            states = {r["state"] for r in client.status()}
            if states <= {"done", "cancelled", "failed"}:
                return
            time.sleep(0.1)
        pytest.fail(f"jobs left non-terminal: {client.status()}")


# ----------------------------------------------------------------------
# Spec parsing
# ----------------------------------------------------------------------
class TestServiceSpec:
    def test_parse_service_spec(self):
        assert parse_service_spec("7077") == ("127.0.0.1", 7077, 0)
        assert parse_service_spec("head:7077") == ("head", 7077, 0)
        assert parse_service_spec("7077:5") == ("127.0.0.1", 7077, 5)
        assert parse_service_spec("7077:-5") == ("127.0.0.1", 7077, -5)
        assert parse_service_spec("head:7077:5") == ("head", 7077, 5)
        assert parse_service_spec(":7077:5") == ("127.0.0.1", 7077, 5)
        with pytest.raises(ValueError):
            parse_service_spec("")
        with pytest.raises(ValueError):
            parse_service_spec("head:notaport")
        with pytest.raises(ValueError):
            parse_service_spec("head:7077:high")
        with pytest.raises(ValueError):
            parse_service_spec("a:b:c:d")

    def test_resolve_backend_service_spec(self):
        backend = resolve_backend("service:127.0.0.1:7077:4")
        try:
            assert isinstance(backend, ServiceBackend)
            assert (backend.host, backend.port, backend.priority) == (
                "127.0.0.1",
                7077,
                4,
            )
        finally:
            backend.close()

    def test_resolve_backend_rejects_shards(self):
        with pytest.raises(ValueError, match="shards"):
            resolve_backend("service:7077", shards=4)

    def test_worker_refuses_service_backend(self):
        with pytest.raises(ValueError, match="cannot itself"):
            run_worker("127.0.0.1:1", backend_spec="service:7077")


# ----------------------------------------------------------------------
# CLI verbs
# ----------------------------------------------------------------------
class TestServiceCLI:
    def test_submit_status_roundtrip(self, service, capsys):
        from repro.experiments.__main__ import main as experiments_main

        code = experiments_main(
            [
                "submit",
                "sweep",
                "--connect",
                f"127.0.0.1:{service}",
                "--priority",
                "2",
                "--format",
                "json",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["rows"] and all(r["ok"] for r in doc["rows"])

        code = experiments_main(
            ["status", "--connect", f"127.0.0.1:{service}", "--format", "json"]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert any(
            r["state"] == "done" and r["priority"] == 2 for r in doc["jobs"]
        )
        # the full document carries the per-client and pool sections
        assert doc["clients"] and doc["clients"][0]["jobs_submitted"] >= 1
        assert doc["pool"]["workers"] >= 1

    def test_status_table_lists_columns(self, service, capsys):
        from repro.experiments.__main__ import main as experiments_main

        assert experiments_main(
            ["status", "--connect", f"127.0.0.1:{service}"]
        ) == 0
        out = capsys.readouterr().out
        assert "job" in out and "state" in out and "priority" in out

    def test_cancel_unknown_job_exits_1(self, service, capsys):
        from repro.experiments.__main__ import main as experiments_main

        code = experiments_main(
            [
                "cancel",
                "--connect",
                f"127.0.0.1:{service}",
                "--job",
                "job-999999",
            ]
        )
        assert code == 1

    def test_submit_requires_connect(self):
        from repro.experiments.__main__ import main as experiments_main

        with pytest.raises(SystemExit):
            experiments_main(["submit", "sweep"])

    def test_submit_rejects_unknown_target(self, service):
        from repro.experiments.__main__ import main as experiments_main

        with pytest.raises(SystemExit):
            experiments_main(
                ["submit", "figure6", "--connect", f"127.0.0.1:{service}"]
            )


class TestCacheCLI:
    @staticmethod
    def _seed(tmp_path) -> None:
        from repro.engine.diskcache import DiskEdgeCache

        cache = DiskEdgeCache(tmp_path)
        grid = CartesianGrid([4, 4])
        cache.store(grid, nearest_neighbor(2), np.zeros((6, 2), dtype=np.int64))
        assert cache.stats().entries == 1
        assert cache.stats().total_bytes > 0

    def test_stats_and_clear(self, tmp_path):
        from repro.engine.diskcache import DiskEdgeCache

        self._seed(tmp_path)
        cache = DiskEdgeCache(tmp_path)
        assert cache.clear() == 1
        stats = cache.stats()
        assert stats.entries == 0 and stats.total_bytes == 0

    def test_cache_cli_table_json_clear(self, tmp_path, capsys):
        from repro.experiments.__main__ import main as experiments_main

        from repro.engine.diskcache import STORE_KINDS, DiskStore

        self._seed(tmp_path)
        DiskStore(tmp_path, "result").store("a" * 64, ("perm", None, None, {}))
        assert experiments_main(["cache", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and str(tmp_path) in out
        assert "result" in out

        assert experiments_main(
            [
                "cache",
                "--cache-dir",
                str(tmp_path),
                "--clear",
                "--format",
                "json",
            ]
        ) == 0
        records = json.loads(capsys.readouterr().out)
        by_kind = {record["kind"]: record for record in records}
        assert set(by_kind) == set(STORE_KINDS)
        assert by_kind["edges"]["removed"] == 1
        assert by_kind["result"]["removed"] == 1
        assert by_kind["perm"]["removed"] == 0
        assert all(record["entries"] == 0 for record in records)

    def test_cache_cli_without_directory_fails(self, monkeypatch):
        from repro.engine.diskcache import CACHE_DIR_ENV
        from repro.experiments.__main__ import main as experiments_main

        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        with pytest.raises(SystemExit, match="no cache directory"):
            experiments_main(["cache"])


# ----------------------------------------------------------------------
# The memoized result-serving layer (content-addressed result store)
# ----------------------------------------------------------------------
def _row_signature(row) -> tuple:
    """Byte-exact comparable form of one wire row
    ``(index, perm, cost, error, metrics)``."""
    index, perm, cost, error, metrics = row
    return (
        index,
        None if perm is None else perm.tobytes(),
        None
        if cost is None
        else (cost.jsum, cost.jmax, cost.per_node.tobytes()),
        error,
        tuple(sorted(metrics.items())),
    )


def _worker_rows(items: list) -> list:
    """What a real worker would answer for one shard, computed locally."""
    with EvaluationEngine(max_workers=1) as engine:
        results = engine.evaluate_batch([request for _, request in items])
    return [
        (index, result.perm, result.cost, result.error, result.metrics)
        for (index, _), result in zip(items, results)
    ]


class TestResultStore:
    def test_same_sweep_twice_with_restart_serves_from_store(self, tmp_path):
        """Golden: a repeat SweepSpec submitted after a daemon restart
        (same cache dir) returns byte-identical rows with zero shards
        dispatched — the second daemon has no workers at all."""
        spec = SweepSpec(
            instances=[
                InstanceSpec.from_nodes(4, 8),
                InstanceSpec.from_nodes(6, 8),
            ],
            stencils=["nearest_neighbor"],
            mappers=["blocked", "hyperplane", "nodecart"],
        )
        assert spec.fingerprint() == spec.fingerprint()
        with ServiceDaemon(
            "127.0.0.1", 0, disk_cache_dir=tmp_path
        ) as daemon:
            worker = _spawn_worker(daemon.port)
            try:
                daemon.wait_for_workers(1, timeout=60)
                with ServiceBackend("127.0.0.1", daemon.port) as backend:
                    first = run(spec, backend).to_rows()
            finally:
                pass  # daemon close shuts the worker down
        assert worker.wait(timeout=30) == 0

        with ServiceDaemon(
            "127.0.0.1", 0, disk_cache_dir=tmp_path
        ) as daemon:
            assert daemon.num_workers == 0
            with ServiceBackend("127.0.0.1", daemon.port) as backend:
                second = run(spec, backend).to_rows()
            (record,) = daemon.jobs()
            assert record["shards"] == 0  # nothing dispatched
            assert record["state"] == "done"
        assert second == first
        serial = run(spec, EvaluationEngine(max_workers=1)).to_rows()
        assert second == serial

    def test_concurrent_identical_cells_compute_once(self, tmp_path):
        """Two clients submitting identical in-flight cells trigger
        exactly one computation, fanned out to both jobs."""
        payload = [(i, r) for i, r in enumerate(_requests()[:4])]
        with ServiceDaemon(
            "127.0.0.1", 0, disk_cache_dir=tmp_path
        ) as daemon:
            worker = _FakeServiceWorker(daemon.port)
            a = ServiceClient("127.0.0.1", daemon.port)
            b = ServiceClient("127.0.0.1", daemon.port)
            try:
                ha = a.submit([payload], label="owner")
                message = worker.pull()  # job A's only shard
                hb = b.submit([payload], label="subscriber")
                # B dispatched nothing: all its cells subscribed to A's
                (record,) = b.status(hb.job_id)
                assert record["shards"] == 0
                # exactly the one computation answers both jobs
                rows = _worker_rows(message[2])
                send_message(worker.sock, (RESULT, message[1], rows))
                got_a = [p for _, p in ha.results()]
                got_b = [p for _, p in hb.results()]
                assert len(got_a) == 1 and len(got_b) == 1
                assert list(map(_row_signature, got_b[0])) == list(
                    map(_row_signature, got_a[0])
                )
                # no rescue/extra jobs ever appeared
                assert len(daemon.jobs()) == 2
            finally:
                worker.close()
                for handle in (ha, hb):
                    handle.close()

    def test_cancelling_the_owner_rescues_the_subscriber(self, tmp_path):
        """Cancelling the job that owns an in-flight cell re-dispatches
        the cell on behalf of a job still waiting for it."""
        payload = [(i, r) for i, r in enumerate(_requests()[:2])]
        with ServiceDaemon(
            "127.0.0.1", 0, disk_cache_dir=tmp_path
        ) as daemon:
            worker = _FakeServiceWorker(daemon.port)
            a = ServiceClient("127.0.0.1", daemon.port)
            b = ServiceClient("127.0.0.1", daemon.port)
            try:
                ha = a.submit([payload], label="owner")
                worker.pull()  # A's shard is in flight on the worker
                hb = b.submit([payload], label="subscriber")
                assert b.status(hb.job_id)[0]["shards"] == 0
                assert a.cancel(ha.job_id) is True
                with pytest.raises(ServiceError, match="cancelled"):
                    list(ha.results())
                # the subscriber inherited the cells: a rescue shard
                rescue = worker.pull()
                rows = _worker_rows(rescue[2])
                send_message(worker.sock, (RESULT, rescue[1], rows))
                got_b = [p for _, p in hb.results()]
                assert len(got_b) == 1
                assert list(map(_row_signature, got_b[0])) == list(
                    map(_row_signature, rows)
                )
            finally:
                worker.close()
                for handle in (ha, hb):
                    handle.close()

    def test_partial_hits_dispatch_only_unknown_cells(self, tmp_path):
        """A job mixing known and novel cells ships only the novel ones."""
        requests = _requests()[:4]
        with ServiceDaemon(
            "127.0.0.1", 0, disk_cache_dir=tmp_path
        ) as daemon:
            worker = _FakeServiceWorker(daemon.port)
            client = ServiceClient("127.0.0.1", daemon.port)
            try:
                warm = [(i, r) for i, r in enumerate(requests[:2])]
                h1 = client.submit([warm], label="warm")
                message = worker.pull()
                send_message(
                    worker.sock,
                    (RESULT, message[1], _worker_rows(message[2])),
                )
                assert len(list(h1.results())) == 1
                # repeat the two known cells plus two novel ones
                mixed = [(i, r) for i, r in enumerate(requests)]
                h2 = client.submit([mixed], label="mixed")
                message = worker.pull()
                assert len(message[2]) == 2  # only the novel cells shipped
                send_message(
                    worker.sock,
                    (RESULT, message[1], _worker_rows(message[2])),
                )
                (got,) = [p for _, p in h2.results()]
                assert [row[0] for row in got] == [0, 1, 2, 3]
                assert all(row[1] is not None for row in got)
            finally:
                worker.close()
                h1.close()
                h2.close()

    def test_opaque_payloads_pass_through_untouched(self, tmp_path):
        """Unkeyable items are dispatched verbatim and their payloads
        forwarded unparsed, even with the store armed."""
        with ServiceDaemon(
            "127.0.0.1", 0, disk_cache_dir=tmp_path
        ) as daemon:
            worker = _FakeServiceWorker(daemon.port)
            client = ServiceClient("127.0.0.1", daemon.port)
            try:
                handle = client.submit([[("opaque", 0)]], label="raw")
                message = worker.pull()
                assert message[2] == [("opaque", 0)]
                worker.finish(message[1], message[2])
                ((_, payload),) = list(handle.results())
                assert payload == [f"payload-{message[1]}"]
            finally:
                worker.close()
                handle.close()
