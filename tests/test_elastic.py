"""The elastic multi-tenant service tier: autoscaler, fair share, TLS.

Covers the acceptance criteria of the elastic tier: a daemon started at
``min_workers=0`` scales up under load by spawning real worker
subprocesses, serves results byte-identical to serial evaluation, and
drains the pool back to the floor when idle (over TLS end to end); a
flooding tenant's shards interleave with — rather than starve — another
tenant's single job; per-client admission quotas answer over-quota
submissions with a clean ``REJECTED``; and the daemon survives shutdown
with a non-empty multi-tenant queue.  Plus unit tests for the
autoscaler control loop (pending-spawn ledger, idle drain, pool
bounds), the spawner argv/env construction, and the TLS context
helpers.
"""

from __future__ import annotations

import asyncio
import shutil
import subprocess
import sys
import time

import pytest

from repro import (
    Autoscaler,
    EvaluationEngine,
    ExecSpawner,
    LocalSpawner,
    ServiceBackend,
    ServiceClient,
    ServiceDaemon,
    ServiceError,
)
from repro.engine.cluster.protocol import (
    PROTOCOL_VERSION,
    REJECTED,
    SECRET_ENV,
    TLS_CA_ENV,
    TLS_CERT_ENV,
    TLS_KEY_ENV,
    client_tls_context,
    resolve_tls,
    server_tls_context,
)

from .test_backends import _requests, _signature
from .test_service import _FakeServiceWorker

_OPENSSL = shutil.which("openssl")


def _make_cert(directory, name: str) -> tuple[str, str]:
    """One self-signed cert/key pair for 127.0.0.1, via the openssl CLI."""
    cert = str(directory / f"{name}.pem")
    key = str(directory / f"{name}.key")
    subprocess.run(
        [
            _OPENSSL,
            "req",
            "-x509",
            "-newkey",
            "rsa:2048",
            "-keyout",
            key,
            "-out",
            cert,
            "-days",
            "2",
            "-nodes",
            "-subj",
            "/CN=127.0.0.1",
            "-addext",
            "subjectAltName=IP:127.0.0.1,DNS:localhost",
        ],
        check=True,
        capture_output=True,
    )
    return cert, key


@pytest.fixture(scope="module")
def tls_files(tmp_path_factory):
    if _OPENSSL is None:  # pragma: no cover - openssl ships everywhere we CI
        pytest.skip("openssl CLI not available")
    return _make_cert(tmp_path_factory.mktemp("tls"), "daemon")


@pytest.fixture(scope="module")
def serial_results():
    return EvaluationEngine(max_workers=1).evaluate_batch(_requests())


# ----------------------------------------------------------------------
# Fair-share scheduling and admission control (hand-driven worker)
# ----------------------------------------------------------------------
class TestFairShare:
    def test_flooding_tenant_does_not_starve_another(self):
        """Acceptance: with tenant A flooding the queue, tenant B's
        single shard is dispatched within one shard round of its
        submission instead of behind all of A's backlog."""
        with ServiceDaemon("127.0.0.1", 0, heartbeat_timeout=30.0) as daemon:
            worker = _FakeServiceWorker(daemon.port)
            a = ServiceClient("127.0.0.1", daemon.port, tenant="alpha")
            b = ServiceClient("127.0.0.1", daemon.port, tenant="beta")
            flood = a.submit([[("flood", i)] for i in range(6)], label="flood")
            try:
                first = worker.pull()  # one alpha shard dispatched
                assert first[1] in flood.shard_ids
                single = b.submit([[("single", 0)]], label="single")
                assert b.status(single.job_id)[0]["state"] == "queued"
                # alpha finishes the round it started; beta's shard is
                # the very next dispatch, 5 alpha shards still queued.
                order = []
                for _ in range(2):
                    message = worker.pull()
                    order.append(
                        "beta" if message[1] in single.shard_ids else "alpha"
                    )
                    worker.finish(message[1], message[2])
                assert order == ["alpha", "beta"]
                for _ in range(4):  # alpha's remaining backlog
                    message = worker.pull()
                    assert message[1] in flood.shard_ids
                    worker.finish(message[1], message[2])
                worker.finish(first[1], first[2])
                assert len(list(single.results())) == 1
                assert len(list(flood.results())) == 6
                single.close()
            finally:
                worker.close()
                flood.close()

    def test_single_tenant_keeps_priority_fifo_order(self):
        """With one tenant the fair-share queue degenerates to the old
        (priority desc, submission FIFO, shard order) dispatch."""
        with ServiceDaemon("127.0.0.1", 0, heartbeat_timeout=30.0) as daemon:
            worker = _FakeServiceWorker(daemon.port)
            client = ServiceClient("127.0.0.1", daemon.port)
            low = client.submit([[("low", i)] for i in range(2)], priority=0)
            high = client.submit([[("high", i)] for i in range(2)], priority=5)
            try:
                order = []
                for _ in range(4):
                    message = worker.pull()
                    order.append(
                        "high" if message[1] in high.shard_ids else "low"
                    )
                    worker.finish(message[1], message[2])
                assert order == ["high", "high", "low", "low"]
            finally:
                worker.close()
                low.close()
                high.close()

    def test_status_reports_per_client_counters(self):
        """The STATUS document's ``clients`` section carries the
        per-tenant share/quota counters; job records name their
        tenant."""
        with ServiceDaemon("127.0.0.1", 0, heartbeat_timeout=30.0) as daemon:
            a = ServiceClient("127.0.0.1", daemon.port, tenant="alpha")
            handle = a.submit([[("x", 0)], [("x", 1)]], label="mine")
            try:
                doc = a.status_full()
                (job,) = doc["jobs"]
                assert job["client"] == "alpha"
                (record,) = doc["clients"]
                assert record["client"] == "alpha"
                assert record["jobs_submitted"] == 1
                assert record["queued_shards"] == 2
                assert record["active_jobs"] == 1
                assert record["rejected"] == 0
                assert doc["pool"]["queued_shards"] == 2
                assert doc["pool"]["workers"] == 0
            finally:
                a.cancel(handle.job_id)
                handle.close()

    def test_status_from_never_submitting_client_under_load(self):
        """A monitoring client that never submits sees the full
        document while another tenant's backlog is queued."""
        with ServiceDaemon("127.0.0.1", 0, heartbeat_timeout=30.0) as daemon:
            flooder = ServiceClient("127.0.0.1", daemon.port, tenant="flood")
            handle = flooder.submit([[("f", i)] for i in range(8)])
            try:
                watcher = ServiceClient(
                    "127.0.0.1", daemon.port, tenant="watcher"
                )
                doc = watcher.status_full()
                assert doc["pool"]["queued_shards"] == 8
                assert [r["client"] for r in doc["clients"]] == ["flood"]
                assert doc["jobs"][0]["state"] == "queued"
                # plain status() stays the job-record list
                assert watcher.status()[0]["job"] == handle.job_id
            finally:
                flooder.cancel(handle.job_id)
                handle.close()


class TestAdmission:
    def test_over_quota_jobs_rejected_until_capacity_frees(self):
        with ServiceDaemon(
            "127.0.0.1", 0, heartbeat_timeout=30.0, max_client_jobs=1
        ) as daemon:
            client = ServiceClient("127.0.0.1", daemon.port, tenant="greedy")
            first = client.submit([[("a", 0)]])
            with pytest.raises(ServiceError, match="submission rejected"):
                client.submit([[("b", 0)]])
            (record,) = client.status_full()["clients"]
            assert record["rejected"] == 1
            assert client.cancel(first.job_id) is True
            first.close()
            second = client.submit([[("c", 0)]])  # capacity freed
            client.cancel(second.job_id)
            second.close()

    def test_queued_shard_quota_counts_the_submission_itself(self):
        with ServiceDaemon(
            "127.0.0.1", 0, heartbeat_timeout=30.0, max_client_queued=2
        ) as daemon:
            client = ServiceClient("127.0.0.1", daemon.port, tenant="bulk")
            with pytest.raises(ServiceError, match="submission rejected"):
                client.submit([[("x", i)] for i in range(3)])
            ok = client.submit([[("x", i)] for i in range(2)])
            with pytest.raises(ServiceError, match="submission rejected"):
                client.submit([[("y", 0)]])  # 2 queued + 1 > 2
            client.cancel(ok.job_id)
            ok.close()

    def test_quota_is_per_tenant_not_global(self):
        """One tenant at its quota never blocks another tenant."""
        with ServiceDaemon(
            "127.0.0.1", 0, heartbeat_timeout=30.0, max_client_jobs=1
        ) as daemon:
            greedy = ServiceClient("127.0.0.1", daemon.port, tenant="greedy")
            other = ServiceClient("127.0.0.1", daemon.port, tenant="other")
            held = greedy.submit([[("a", 0)]])
            with pytest.raises(ServiceError, match="submission rejected"):
                greedy.submit([[("b", 0)]])
            admitted = other.submit([[("c", 0)]])  # different bucket
            for client, handle in ((greedy, held), (other, admitted)):
                client.cancel(handle.job_id)
                handle.close()

    def test_shared_tenant_name_shares_one_bucket(self):
        """Two connections declaring the same tenant share its quota."""
        with ServiceDaemon(
            "127.0.0.1", 0, heartbeat_timeout=30.0, max_client_jobs=1
        ) as daemon:
            one = ServiceClient("127.0.0.1", daemon.port, tenant="team")
            two = ServiceClient("127.0.0.1", daemon.port, tenant="team")
            held = one.submit([[("a", 0)]])
            with pytest.raises(ServiceError, match="submission rejected"):
                two.submit([[("b", 0)]])
            one.cancel(held.job_id)
            held.close()

    def test_rejected_wire_constant_is_current(self):
        assert REJECTED == "rejected_submit"
        assert PROTOCOL_VERSION == 6


class TestShutdownWithQueue:
    def test_daemon_close_with_multi_tenant_backlog(self):
        """Closing a daemon whose fair-share queue is non-empty (two
        tenants, several jobs, zero workers) fails every open job and
        returns promptly."""
        daemon = ServiceDaemon("127.0.0.1", 0, heartbeat_timeout=30.0)
        a = ServiceClient("127.0.0.1", daemon.port, tenant="alpha")
        b = ServiceClient("127.0.0.1", daemon.port, tenant="beta")
        handles = [
            a.submit([[("a", i)] for i in range(3)]),
            b.submit([[("b", 0)]]),
            a.submit([[("c", 0)], [("c", 1)]]),
        ]
        start = time.monotonic()
        daemon.close()
        assert time.monotonic() - start < 20
        for handle in handles:
            with pytest.raises(ServiceError, match="shut down|closed|lost"):
                list(handle.results())
            handle.close()


# ----------------------------------------------------------------------
# Autoscaler control loop (fakes; no sockets, no subprocesses)
# ----------------------------------------------------------------------
class _FakeCoordinator:
    def __init__(self):
        self.snap = dict(
            workers=0,
            busy=0,
            draining=0,
            queued_shards=0,
            inflight_shards=0,
            live_jobs=0,
        )
        self.address = ("127.0.0.1", 12345)
        self.drain_calls: list[int] = []

    def load_snapshot(self) -> dict:
        return dict(self.snap)

    async def drain_workers(self, count: int) -> int:
        self.drain_calls.append(count)
        self.snap["workers"] -= count
        return count


class _RecordingSpawner:
    def __init__(self):
        self.spawned: list[tuple[str, int]] = []

    def spawn(self, host: str, port: int) -> None:
        self.spawned.append((host, port))

    def reap(self) -> int:
        return len(self.spawned)

    def close(self) -> None:
        pass


def _tick(scaler: Autoscaler, times: int = 1) -> None:
    async def run() -> None:
        for _ in range(times):
            await scaler._tick()

    asyncio.run(run())


class TestAutoscalerLoop:
    def test_scales_to_backlog_capped_at_max(self):
        coord, spawner = _FakeCoordinator(), _RecordingSpawner()
        scaler = Autoscaler(coord, spawner, min_workers=0, max_workers=3)
        coord.snap["queued_shards"] = 10
        _tick(scaler)
        assert len(spawner.spawned) == 3
        assert spawner.spawned[0] == ("127.0.0.1", 12345)
        assert scaler.stats()["pending_spawns"] == 3

    def test_pending_spawns_prevent_double_spawning(self):
        coord, spawner = _FakeCoordinator(), _RecordingSpawner()
        scaler = Autoscaler(coord, spawner, min_workers=0, max_workers=4)
        coord.snap["queued_shards"] = 2
        _tick(scaler, times=3)  # workers have not connected yet
        assert len(spawner.spawned) == 2  # not 6

    def test_connected_workers_consume_the_pending_ledger(self):
        coord, spawner = _FakeCoordinator(), _RecordingSpawner()
        scaler = Autoscaler(coord, spawner, min_workers=0, max_workers=4)
        coord.snap["queued_shards"] = 2
        _tick(scaler)
        coord.snap.update(workers=2, busy=2, queued_shards=0, inflight_shards=2)
        _tick(scaler)
        assert scaler.stats()["pending_spawns"] == 0
        assert len(spawner.spawned) == 2  # demand met, no extra spawn

    def test_expired_spawns_are_written_off_and_retried(self):
        coord, spawner = _FakeCoordinator(), _RecordingSpawner()
        scaler = Autoscaler(
            coord, spawner, min_workers=0, max_workers=2,
            spawn_timeout=0.01, backoff_base=0.02, backoff_max=0.02,
        )
        coord.snap["queued_shards"] = 1
        _tick(scaler)
        assert len(spawner.spawned) == 1
        time.sleep(0.05)  # the spawn never produced a worker
        _tick(scaler)  # written off; a brief respawn backoff starts
        assert scaler.stats()["pending_spawns"] == 0
        time.sleep(0.05)
        _tick(scaler)  # backoff elapsed
        assert scaler.stats()["spawned_total"] == 2  # retried

    def test_min_workers_floor_spawns_without_load(self):
        coord, spawner = _FakeCoordinator(), _RecordingSpawner()
        scaler = Autoscaler(coord, spawner, min_workers=2, max_workers=4)
        _tick(scaler)
        assert len(spawner.spawned) == 2

    def test_idle_pool_drains_to_the_floor_after_grace(self):
        coord, spawner = _FakeCoordinator(), _RecordingSpawner()
        scaler = Autoscaler(
            coord, spawner, min_workers=1, max_workers=4, idle_grace=0.0
        )
        coord.snap.update(workers=3)
        _tick(scaler)  # starts the idle clock
        assert coord.drain_calls == []
        _tick(scaler)  # grace elapsed
        assert coord.drain_calls == [2]
        assert scaler.stats()["drained_total"] == 2

    def test_load_resets_the_idle_clock(self):
        coord, spawner = _FakeCoordinator(), _RecordingSpawner()
        scaler = Autoscaler(
            coord, spawner, min_workers=0, max_workers=4, idle_grace=0.0
        )
        coord.snap.update(workers=2)
        _tick(scaler)
        coord.snap.update(busy=1, inflight_shards=1)  # work arrived
        _tick(scaler)
        assert coord.drain_calls == []

    def test_busy_workers_are_never_drained(self):
        coord, spawner = _FakeCoordinator(), _RecordingSpawner()
        scaler = Autoscaler(
            coord, spawner, min_workers=0, max_workers=4, idle_grace=0.0
        )
        coord.snap.update(workers=2, busy=1, inflight_shards=3)
        _tick(scaler, times=3)
        assert coord.drain_calls == []

    def test_bounds_validation(self):
        coord, spawner = _FakeCoordinator(), _RecordingSpawner()
        with pytest.raises(ValueError, match="min_workers"):
            Autoscaler(coord, spawner, min_workers=-1)
        with pytest.raises(ValueError, match="max_workers"):
            Autoscaler(coord, spawner, min_workers=3, max_workers=2)
        with pytest.raises(ValueError, match="backlog_per_worker"):
            Autoscaler(coord, spawner, backlog_per_worker=0)
        with pytest.raises(ValueError, match="queue_age_threshold"):
            Autoscaler(coord, spawner, queue_age_threshold=-1)
        with pytest.raises(ValueError, match="backoff"):
            Autoscaler(coord, spawner, backoff_base=0)
        with pytest.raises(ValueError, match="backoff"):
            Autoscaler(coord, spawner, backoff_base=5, backoff_max=1)


class TestQueueAgeTrigger:
    def _loaded(self, age: float):
        """A pool the depth formula is happy with, one aged queued shard."""
        coord, spawner = _FakeCoordinator(), _RecordingSpawner()
        coord.snap.update(
            workers=2,
            busy=1,
            queued_shards=1,
            inflight_shards=1,
            oldest_queued_age=age,
        )
        return coord, spawner

    def test_aged_queue_provisions_an_extra_worker(self):
        coord, spawner = self._loaded(age=15.0)
        scaler = Autoscaler(
            coord, spawner, min_workers=0, max_workers=4,
            queue_age_threshold=10.0,
        )
        _tick(scaler)
        assert len(spawner.spawned) == 1  # latency, not depth, asked for it

    def test_fresh_queue_stays_with_the_depth_formula(self):
        coord, spawner = self._loaded(age=3.0)
        scaler = Autoscaler(
            coord, spawner, min_workers=0, max_workers=4,
            queue_age_threshold=10.0,
        )
        _tick(scaler)
        assert spawner.spawned == []

    def test_zero_threshold_disables_the_trigger(self):
        coord, spawner = self._loaded(age=1e9)
        scaler = Autoscaler(
            coord, spawner, min_workers=0, max_workers=4,
            queue_age_threshold=0.0,
        )
        _tick(scaler)
        assert spawner.spawned == []

    def test_age_trigger_respects_max_workers(self):
        coord, spawner = self._loaded(age=60.0)
        scaler = Autoscaler(
            coord, spawner, min_workers=0, max_workers=2,
            queue_age_threshold=10.0,
        )
        _tick(scaler, times=3)
        assert spawner.spawned == []  # pool already at the ceiling

    def test_one_extra_per_tick_not_per_shard(self):
        coord, spawner = self._loaded(age=60.0)
        coord.snap["queued_shards"] = 5
        scaler = Autoscaler(
            coord, spawner, min_workers=0, max_workers=10,
            backlog_per_worker=100, queue_age_threshold=10.0,
        )
        _tick(scaler)
        # depth demand is busy+1 = 2 (provisioned), the trigger adds 1
        assert len(spawner.spawned) == 1


class TestSpawnBackoff:
    def test_expired_spawn_backs_off_the_retry(self):
        coord, spawner = _FakeCoordinator(), _RecordingSpawner()
        scaler = Autoscaler(
            coord, spawner, min_workers=0, max_workers=2,
            spawn_timeout=0.01, backoff_base=30.0, backoff_max=60.0,
        )
        coord.snap["queued_shards"] = 1
        _tick(scaler)
        assert len(spawner.spawned) == 1
        time.sleep(0.05)  # the spawn never produced a worker
        _tick(scaler)
        assert len(spawner.spawned) == 1  # held back, not respawned
        stats = scaler.stats()
        assert stats["spawn_failures"] == 1
        assert stats["spawn_backoff_remaining"] > 0

    def test_backoff_expiry_allows_the_retry(self):
        coord, spawner = _FakeCoordinator(), _RecordingSpawner()
        scaler = Autoscaler(
            coord, spawner, min_workers=0, max_workers=2,
            spawn_timeout=0.01, backoff_base=0.02, backoff_max=0.02,
        )
        coord.snap["queued_shards"] = 1
        _tick(scaler)
        time.sleep(0.05)
        _tick(scaler)  # writes off the spawn, enters backoff
        assert len(spawner.spawned) == 1
        time.sleep(0.05)
        _tick(scaler)  # backoff elapsed
        assert len(spawner.spawned) == 2

    def test_consecutive_failures_escalate(self):
        coord, spawner = _FakeCoordinator(), _RecordingSpawner()
        scaler = Autoscaler(
            coord, spawner, min_workers=0, max_workers=2,
            spawn_timeout=0.01, backoff_base=0.02, backoff_max=0.02,
        )
        coord.snap["queued_shards"] = 1
        for _ in range(2):
            _tick(scaler)  # spawn (or respawn after backoff)
            time.sleep(0.05)
            _tick(scaler)  # write-off
            time.sleep(0.05)
        assert scaler.stats()["spawn_failures"] == 2

    def test_early_worker_death_triggers_backoff(self):
        coord, spawner = _FakeCoordinator(), _RecordingSpawner()
        scaler = Autoscaler(
            coord, spawner, min_workers=0, max_workers=2,
            backoff_base=30.0, backoff_max=60.0,
        )
        coord.snap.update(queued_shards=1, worker_early_deaths=1)
        _tick(scaler)
        # the crash was counted before the spawn decision: held back
        assert spawner.spawned == []
        assert scaler.stats()["spawn_failures"] == 1

    def test_completed_shard_resets_the_backoff(self):
        coord, spawner = _FakeCoordinator(), _RecordingSpawner()
        scaler = Autoscaler(
            coord, spawner, min_workers=0, max_workers=2,
            backoff_base=30.0, backoff_max=60.0,
        )
        coord.snap.update(queued_shards=1, worker_early_deaths=1)
        _tick(scaler)
        assert spawner.spawned == []  # backing off
        coord.snap.update(completed_shards=3)  # the pool made progress
        _tick(scaler)
        assert len(spawner.spawned) == 1
        stats = scaler.stats()
        assert stats["spawn_failures"] == 0
        assert stats["spawn_backoff_remaining"] == 0.0


class TestSpawners:
    def test_local_spawner_argv_and_env(self):
        spawner = LocalSpawner(
            backend_spec="process:2",
            shards=2,
            secret="hush",
            tls_ca="/tmp/ca.pem",
        )
        args, env = spawner._build("0.0.0.0", 7077)
        assert args[:3] == [sys.executable, "-m", "repro.engine.cluster.worker"]
        assert "127.0.0.1:7077" in args  # loopback, not the bind host
        assert "--backend" in args and "process:2" in args
        assert "--tls-ca" in args and "/tmp/ca.pem" in args
        # the secret travels via the environment, never argv
        assert "hush" not in args
        assert env[SECRET_ENV] == "hush"

    def test_exec_spawner_formats_the_template(self):
        spawner = ExecSpawner("ssh pool repro-worker --connect {address}")
        args, env = spawner._build("head", 7077)
        assert args == ["ssh", "pool", "repro-worker", "--connect", "head:7077"]
        assert env is None
        with pytest.raises(ValueError):
            ExecSpawner("   ")

    def test_reap_and_close_tolerate_no_processes(self):
        spawner = LocalSpawner()
        assert spawner.reap() == 0
        spawner.close()


# ----------------------------------------------------------------------
# TLS transport
# ----------------------------------------------------------------------
class TestTLS:
    def test_context_helpers(self, tls_files):
        cert, key = tls_files
        server = server_tls_context(cert, key)
        client = client_tls_context(cert)
        assert server.minimum_version.name == "TLSv1_2"
        assert client.check_hostname is False

    def test_resolve_tls_env_fallbacks(self, monkeypatch):
        for env in (TLS_CERT_ENV, TLS_KEY_ENV, TLS_CA_ENV):
            monkeypatch.delenv(env, raising=False)
        assert resolve_tls() == (None, None, None)
        monkeypatch.setenv(TLS_CERT_ENV, "c.pem")
        monkeypatch.setenv(TLS_KEY_ENV, "k.pem")
        assert resolve_tls() == ("c.pem", "k.pem", None)
        assert resolve_tls(cert="mine.pem") == ("mine.pem", "k.pem", None)
        monkeypatch.setenv(TLS_CERT_ENV, "")  # empty means off
        assert resolve_tls() == (None, "k.pem", None)

    def test_status_roundtrip_over_tls(self, tls_files):
        cert, key = tls_files
        with ServiceDaemon(
            "127.0.0.1", 0, heartbeat_timeout=30.0, tls_cert=cert, tls_key=key
        ) as daemon:
            client = ServiceClient("127.0.0.1", daemon.port, tls_ca=cert)
            assert client.status() == []

    def test_cleartext_client_rejected_by_tls_daemon(self, tls_files):
        cert, key = tls_files
        with ServiceDaemon(
            "127.0.0.1", 0, heartbeat_timeout=30.0, tls_cert=cert, tls_key=key
        ) as daemon:
            with pytest.raises(ServiceError):
                ServiceClient(
                    "127.0.0.1", daemon.port, connect_timeout=3.0
                ).status()

    def test_wrong_trust_root_rejected(self, tls_files, tmp_path):
        cert, key = tls_files
        other_cert, _ = _make_cert(tmp_path, "other")
        with ServiceDaemon(
            "127.0.0.1", 0, heartbeat_timeout=30.0, tls_cert=cert, tls_key=key
        ) as daemon:
            with pytest.raises(ServiceError, match="cannot reach|handshake"):
                ServiceClient(
                    "127.0.0.1",
                    daemon.port,
                    tls_ca=other_cert,
                    connect_timeout=3.0,
                ).status()


# ----------------------------------------------------------------------
# The elastic end-to-end: scale up from zero, serve, drain — over TLS
# ----------------------------------------------------------------------
class TestElasticEndToEnd:
    def test_scale_up_serve_and_drain_over_tls(self, tls_files, serial_results):
        """Acceptance: a daemon started with zero workers autoscales up
        under load, serves a sweep byte-identical to serial, and drains
        the pool back to zero — every connection over TLS."""
        cert, key = tls_files
        with ServiceDaemon(
            "127.0.0.1",
            0,
            heartbeat_timeout=30.0,
            min_workers=0,
            max_workers=2,
            idle_grace=1.0,
            tls_cert=cert,
            tls_key=key,
        ) as daemon:
            assert daemon.num_workers == 0
            with ServiceBackend(
                "127.0.0.1", daemon.port, tls_ca=cert, tenant="e2e"
            ) as backend:
                results = backend.evaluate_batch(_requests())
            assert list(map(_signature, results)) == list(
                map(_signature, serial_results)
            )
            doc = daemon.status()
            assert doc["pool"]["autoscale"] is True
            assert doc["pool"]["spawned_total"] >= 2  # scaled up under load
            assert doc["clients"][0]["client"] == "e2e"
            # ... and back down: the pool drains to the floor of zero.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if daemon.num_workers == 0 and daemon.status()["pool"][
                    "drained_total"
                ] >= 2:
                    break
                time.sleep(0.2)
            else:  # pragma: no cover - failure renders the pool state
                pytest.fail(f"pool never drained: {daemon.status()['pool']}")
