"""Tests for the statistics pipeline (Section VI methodology)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConfidenceInterval, mean_ci, median_ci, remove_outliers_iqr


class TestOutlierRemoval:
    def test_planted_outlier_removed(self):
        samples = np.array([1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 50.0])
        kept = remove_outliers_iqr(samples)
        assert 50.0 not in kept
        assert len(kept) == 6

    def test_clean_data_untouched(self):
        samples = np.linspace(1.0, 2.0, 20)
        assert len(remove_outliers_iqr(samples)) == 20

    def test_small_samples_returned_verbatim(self):
        samples = np.array([1.0, 100.0, 1.0])
        assert (remove_outliers_iqr(samples) == samples).all()

    def test_constant_data(self):
        samples = np.full(10, 3.0)
        assert (remove_outliers_iqr(samples) == samples).all()

    def test_degenerate_iqr_keeps_at_least_one(self):
        samples = np.array([1.0] * 9 + [100.0])
        kept = remove_outliers_iqr(samples)
        assert kept.size >= 1

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            remove_outliers_iqr(np.zeros((2, 2)))

    @given(st.lists(st.floats(0.1, 100.0), min_size=4, max_size=50))
    @settings(max_examples=50)
    def test_subset_property(self, values):
        samples = np.array(values)
        kept = remove_outliers_iqr(samples)
        assert kept.size <= samples.size
        assert np.isin(kept, samples).all()


class TestMeanCI:
    def test_constant_samples(self):
        ci = mean_ci(np.full(10, 2.5))
        assert ci.value == 2.5
        assert ci.low == ci.high == 2.5
        assert ci.half_width == 0.0

    def test_ci_contains_mean_and_shrinks(self):
        rng = np.random.default_rng(0)
        small = mean_ci(rng.normal(10, 1, size=20))
        large = mean_ci(rng.normal(10, 1, size=2000))
        assert small.low < 10.5 and small.high > 9.5
        assert (large.high - large.low) < (small.high - small.low)

    def test_outlier_removal_changes_estimate(self):
        samples = np.array([1.0] * 30 + [1000.0])
        with_removal = mean_ci(samples)
        without = mean_ci(samples, remove_outliers=False)
        assert with_removal.value == pytest.approx(1.0)
        assert without.value > 30

    def test_single_sample(self):
        ci = mean_ci(np.array([4.2]))
        assert ci.value == ci.low == ci.high == 4.2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci(np.array([]))


class TestMedianCI:
    def test_median_value(self):
        ci = median_ci(np.array([1.0, 2.0, 3.0, 4.0, 100.0]))
        assert ci.value == 3.0

    def test_notch_formula(self):
        samples = np.arange(1.0, 101.0)
        ci = median_ci(samples)
        q1, q3 = np.percentile(samples, [25, 75])
        half = 1.57 * (q3 - q1) / np.sqrt(100)
        assert ci.low == pytest.approx(ci.value - half)
        assert ci.high == pytest.approx(ci.value + half)

    def test_single_sample(self):
        ci = median_ci(np.array([7.0]))
        assert ci.low == ci.high == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median_ci(np.array([]))


class TestConfidenceInterval:
    def test_overlap_detection(self):
        a = ConfidenceInterval(1.0, 0.9, 1.1)
        b = ConfidenceInterval(1.05, 1.0, 1.2)
        c = ConfidenceInterval(2.0, 1.9, 2.1)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c) and not c.overlaps(a)

    def test_touching_intervals_overlap(self):
        a = ConfidenceInterval(1.0, 0.9, 1.1)
        b = ConfidenceInterval(1.2, 1.1, 1.3)
        assert a.overlaps(b)

    def test_half_width_asymmetric(self):
        ci = ConfidenceInterval(1.0, 0.8, 1.1)
        assert ci.half_width == pytest.approx(0.2)

    def test_repr(self):
        assert "[" in repr(ConfidenceInterval(1.0, 0.9, 1.1))
