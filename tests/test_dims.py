"""Tests for the ``MPI_Dims_create`` equivalent."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import InvalidGridError, dims_create
from repro.grid.dims import divisors, prime_factors


class TestPrimeFactors:
    def test_small_values(self):
        assert prime_factors(1) == []
        assert prime_factors(2) == [2]
        assert prime_factors(48) == [2, 2, 2, 2, 3]
        assert prime_factors(97) == [97]

    def test_invalid(self):
        with pytest.raises(InvalidGridError):
            prime_factors(0)

    @given(st.integers(1, 10_000))
    @settings(max_examples=100)
    def test_product_reconstructs(self, n):
        assert math.prod(prime_factors(n)) == n


class TestDivisors:
    def test_known(self):
        assert divisors(1) == [1]
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(49) == [1, 7, 49]

    @given(st.integers(1, 5_000))
    @settings(max_examples=100)
    def test_all_divide(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds == sorted(ds)


class TestDimsCreate:
    def test_paper_grids(self):
        """The evaluation grids of Figures 6 and 7."""
        assert dims_create(2400, 2) == (50, 48)
        assert dims_create(4800, 2) == (75, 64)

    def test_simple_cases(self):
        assert dims_create(12, 2) == (4, 3)
        assert dims_create(12, 3) == (3, 2, 2)
        assert dims_create(7, 2) == (7, 1)
        assert dims_create(1, 3) == (1, 1, 1)

    def test_one_dimension(self):
        assert dims_create(30, 1) == (30,)

    def test_perfect_square_and_cube(self):
        assert dims_create(36, 2) == (6, 6)
        assert dims_create(27, 3) == (3, 3, 3)

    def test_non_increasing_order(self):
        for n in (24, 96, 2400, 1056, 330):
            for d in (2, 3, 4):
                dims = dims_create(n, d)
                assert list(dims) == sorted(dims, reverse=True)
                assert math.prod(dims) == n

    def test_minimises_largest_dimension(self):
        # 2400 = 50*48; any 2-d factorisation has max >= 50
        dims = dims_create(2400, 2)
        for q in range(49, int(math.isqrt(2400)), -1):
            assert 2400 % q != 0 or q == 48  # no divisor strictly between

    def test_constraints_fixed_entries(self):
        assert dims_create(24, 3, dims=[0, 2, 0]) == (4, 2, 3)
        assert dims_create(24, 2, dims=[6, 0]) == (6, 4)
        assert dims_create(24, 2, dims=[6, 4]) == (6, 4)

    def test_constraint_indivisible(self):
        with pytest.raises(InvalidGridError):
            dims_create(24, 2, dims=[5, 0])

    def test_all_fixed_wrong_product(self):
        with pytest.raises(InvalidGridError):
            dims_create(24, 2, dims=[2, 3])

    def test_invalid_arguments(self):
        with pytest.raises(InvalidGridError):
            dims_create(0, 2)
        with pytest.raises(InvalidGridError):
            dims_create(4, 0)
        with pytest.raises(InvalidGridError):
            dims_create(4, 2, dims=[1])
        with pytest.raises(InvalidGridError):
            dims_create(4, 2, dims=[-1, 0])

    @given(st.integers(1, 4096), st.integers(1, 4))
    @settings(max_examples=150)
    def test_product_and_order_properties(self, n, d):
        dims = dims_create(n, d)
        assert len(dims) == d
        assert math.prod(dims) == n
        assert list(dims) == sorted(dims, reverse=True)

    @given(st.integers(2, 2048))
    @settings(max_examples=100)
    def test_2d_is_closest_divisor_pair(self, n):
        """The 2-d split uses the divisor closest to sqrt(n)."""
        d0, d1 = dims_create(n, 2)
        best = min(
            (q for q in divisors(n) if q * q >= n),
        )
        assert d0 == best and d1 == n // best
