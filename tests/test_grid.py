"""Unit and property tests for :class:`repro.CartesianGrid`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CartesianGrid, InvalidGridError

from .conftest import grids


class TestConstruction:
    def test_basic_properties(self):
        g = CartesianGrid([4, 3, 2])
        assert g.dims == (4, 3, 2)
        assert g.ndim == 3
        assert g.size == 24
        assert len(g) == 24
        assert g.periods == (False, False, False)

    def test_row_major_strides(self):
        g = CartesianGrid([4, 3, 2])
        assert g.strides == (6, 2, 1)

    def test_single_dimension(self):
        g = CartesianGrid([7])
        assert g.size == 7
        assert g.coords_of(3) == (3,)

    def test_size_one_dimensions(self):
        g = CartesianGrid([1, 5, 1])
        assert g.size == 5
        assert g.coords_of(2) == (0, 2, 0)

    def test_empty_dims_rejected(self):
        with pytest.raises(InvalidGridError):
            CartesianGrid([])

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(InvalidGridError):
            CartesianGrid([4, 0])
        with pytest.raises(InvalidGridError):
            CartesianGrid([-2])

    def test_non_integer_dims_rejected(self):
        with pytest.raises(TypeError):
            CartesianGrid([2.5, 3])

    def test_periods_length_mismatch(self):
        with pytest.raises(InvalidGridError):
            CartesianGrid([2, 3], periods=[True])

    def test_equality_and_hash(self):
        assert CartesianGrid([2, 3]) == CartesianGrid([2, 3])
        assert CartesianGrid([2, 3]) != CartesianGrid([3, 2])
        assert CartesianGrid([2, 3]) != CartesianGrid([2, 3], periods=[True, False])
        assert hash(CartesianGrid([2, 3])) == hash(CartesianGrid([2, 3]))

    def test_repr_mentions_dims(self):
        assert "[5, 4]" in repr(CartesianGrid([5, 4]))


class TestRankCoordBijection:
    def test_known_coords(self):
        g = CartesianGrid([3, 4])
        assert g.coords_of(0) == (0, 0)
        assert g.coords_of(5) == (1, 1)
        assert g.coords_of(11) == (2, 3)

    def test_rank_of_inverts_coords_of(self):
        g = CartesianGrid([3, 4, 5])
        for r in range(g.size):
            assert g.rank_of(g.coords_of(r)) == r

    def test_rank_out_of_range(self):
        g = CartesianGrid([2, 2])
        with pytest.raises(InvalidGridError):
            g.coords_of(4)
        with pytest.raises(InvalidGridError):
            g.coords_of(-1)

    def test_coords_out_of_range(self):
        g = CartesianGrid([2, 2])
        with pytest.raises(InvalidGridError):
            g.rank_of([2, 0])
        with pytest.raises(InvalidGridError):
            g.rank_of([0, -1])

    def test_coords_wrong_length(self):
        with pytest.raises(InvalidGridError):
            CartesianGrid([2, 2]).rank_of([0])

    def test_periodic_wrapping(self):
        g = CartesianGrid([3, 4], periods=[True, True])
        assert g.rank_of([3, 0]) == g.rank_of([0, 0])
        assert g.rank_of([-1, -1]) == g.rank_of([2, 3])

    def test_nonperiodic_dimension_does_not_wrap(self):
        g = CartesianGrid([3, 4], periods=[True, False])
        assert g.rank_of([-1, 2]) == g.rank_of([2, 2])
        with pytest.raises(InvalidGridError):
            g.rank_of([0, 4])

    @given(grids())
    @settings(max_examples=50)
    def test_bijection_property(self, grid):
        seen = {grid.rank_of(grid.coords_of(r)) for r in range(grid.size)}
        assert seen == set(range(grid.size))


class TestVectorised:
    def test_all_coords_matches_scalar(self):
        g = CartesianGrid([4, 3, 2])
        coords = g.all_coords()
        assert coords.shape == (24, 3)
        for r in range(g.size):
            assert tuple(coords[r]) == g.coords_of(r)

    def test_ranks_array_matches_scalar(self):
        g = CartesianGrid([4, 5])
        coords = g.all_coords()
        ranks = g.ranks_array(coords)
        assert list(ranks) == list(range(g.size))

    def test_ranks_array_periodic(self):
        g = CartesianGrid([3, 3], periods=[True, False])
        out = g.ranks_array(np.array([[4, 1]]))
        assert out[0] == g.rank_of([1, 1])

    def test_ranks_array_validates(self):
        g = CartesianGrid([3, 3])
        with pytest.raises(InvalidGridError):
            g.ranks_array(np.array([[3, 0]]))

    def test_ranks_array_shape_check(self):
        g = CartesianGrid([3, 3])
        with pytest.raises(InvalidGridError):
            g.ranks_array(np.zeros((2, 3), dtype=np.int64))

    def test_coords_array_out_of_range(self):
        g = CartesianGrid([2, 2])
        with pytest.raises(InvalidGridError):
            g.coords_array(np.array([4]))


class TestShift:
    def test_interior_shift(self):
        g = CartesianGrid([3, 3])
        centre = g.rank_of([1, 1])
        assert g.shift(centre, [1, 0]) == g.rank_of([2, 1])
        assert g.shift(centre, [-1, -1]) == g.rank_of([0, 0])

    def test_boundary_returns_none(self):
        g = CartesianGrid([3, 3])
        corner = g.rank_of([0, 0])
        assert g.shift(corner, [-1, 0]) is None
        assert g.shift(corner, [0, -1]) is None

    def test_periodic_shift_wraps(self):
        g = CartesianGrid([3, 3], periods=[True, True])
        corner = g.rank_of([0, 0])
        assert g.shift(corner, [-1, 0]) == g.rank_of([2, 0])

    def test_shift_length_check(self):
        g = CartesianGrid([3, 3])
        with pytest.raises(InvalidGridError):
            g.shift(0, [1])

    @given(grids(), st.data())
    @settings(max_examples=50)
    def test_shift_inverse_property(self, grid, data):
        """Shifting by R then by -R returns to the start (when valid)."""
        rank = data.draw(st.integers(0, grid.size - 1))
        offset = data.draw(
            st.lists(st.integers(-2, 2), min_size=grid.ndim, max_size=grid.ndim)
        )
        mid = grid.shift(rank, offset)
        if mid is not None:
            back = grid.shift(mid, [-c for c in offset])
            assert back == rank
