"""Property tests of algorithm internals (split positions, strip plans,
block factorisations)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nearest_neighbor
from repro.core.hyperplane import _split_positions
from repro.core.nodecart import block_factorizations
from repro.core.strips import strip_widths
from repro.grid.dims import dims_create, divisors


class TestSplitPositions:
    def test_small_cases(self):
        assert _split_positions(2) == [1]
        assert _split_positions(3) == [1, 2]
        assert _split_positions(4) == [2, 1, 3]
        assert _split_positions(5) == [2, 3, 1, 4]

    @given(st.integers(2, 60))
    @settings(max_examples=60)
    def test_covers_all_positions_once(self, size):
        positions = _split_positions(size)
        assert sorted(positions) == list(range(1, size))

    @given(st.integers(2, 60))
    @settings(max_examples=60)
    def test_centre_outward_ordering(self, size):
        """Distances from the centre are non-decreasing."""
        positions = _split_positions(size)
        distances = [abs(q - size / 2) for q in positions]
        assert all(a <= b + 0.51 for a, b in zip(distances, distances[1:]))


class TestStripWidthProperties:
    @given(
        st.integers(2, 40),
        st.integers(2, 40),
        st.integers(1, 64),
    )
    @settings(max_examples=80)
    def test_widths_partition_dimensions_2d(self, d0, d1, n):
        dims = [d0, d1]
        largest = 0 if d0 >= d1 else 1
        widths = strip_widths(dims, (1.0, 1.0), n, largest)
        other = 1 - largest
        assert set(widths) == {other}
        assert sum(widths[other]) == dims[other]
        assert all(w >= 1 for w in widths[other])
        # all strips but the last share the nominal width
        nominal = widths[other][0]
        assert all(w == nominal for w in widths[other][:-1])
        assert widths[other][-1] >= nominal

    @given(st.integers(1, 200))
    @settings(max_examples=50)
    def test_width_close_to_sqrt_n(self, n):
        """For the NN stencil in 2-D the strip width is floor(sqrt(n))."""
        widths = strip_widths([1000, 999], (1.0, 1.0), n, 0)
        nominal = widths[1][0]
        assert nominal == max(1, int(math.sqrt(n)))


class TestBlockFactorizationProperties:
    @given(st.integers(2, 400), st.integers(2, 4))
    @settings(max_examples=80)
    def test_always_feasible_when_n_divides_p(self, p, d):
        """Number theory: n | p implies a valid block exists (so
        Nodecart's practical failures are heterogeneity / indivisibility,
        which the mapper rejects before factorising)."""
        dims = dims_create(p, d)
        for n in divisors(p):
            if n == 1:
                continue
            blocks = block_factorizations(n, dims)
            assert blocks, (p, d, n)
            for block in blocks:
                assert math.prod(block) == n
                assert all(c_i <= d_i and d_i % c_i == 0 for c_i, d_i in zip(block, dims))

    def test_ordering_of_candidates_is_deterministic(self):
        a = block_factorizations(12, [12, 12])
        b = block_factorizations(12, [12, 12])
        assert a == b


class TestDistributedSpotChecks:
    """Cross-checks at a larger scale than the exhaustive property tests."""

    @pytest.mark.parametrize("mapper_name", ["hyperplane", "kd_tree", "stencil_strips"])
    def test_consistency_on_paper_scale_instance(self, mapper_name):
        import repro

        grid = repro.CartesianGrid([75, 64])
        stencil = nearest_neighbor(2)
        alloc = repro.NodeAllocation.homogeneous(100, 48)
        mapper = repro.get_mapper(mapper_name)
        perm = mapper.map_ranks(grid, stencil, alloc)
        rng = np.random.default_rng(17)
        for r in rng.integers(0, grid.size, size=25):
            assert mapper.compute_rank(grid, stencil, alloc, int(r)) == perm[r]
