"""Tests for the distributed graph communicator (Section VI-B step)."""

import numpy as np
import pytest

from repro import HyperplaneMapper, SimulationError, vsc4
from repro.mpisim import (
    DistGraphComm,
    SimMPI,
    cart_create,
    cart_stencil_comm,
    dist_graph_from_cart,
)


def _cart(num_nodes=4, ppn=4, dims=(4, 4), mapper=None):
    job = SimMPI(vsc4(), num_nodes=num_nodes, processes_per_node=ppn)
    return cart_create(job, list(dims), mapper=mapper, reorder=mapper is not None)


class TestConstruction:
    def test_from_cart_degrees(self):
        cart = _cart()
        dg = dist_graph_from_cart(cart)
        centre = cart.rank_at([1, 1])
        corner = cart.rank_at([0, 0])
        assert dg.outdegree(centre) == 4
        assert dg.indegree(centre) == 4
        assert dg.outdegree(corner) == 2
        assert dg.num_directed_edges == 2 * (3 * 4 + 4 * 3)

    def test_symmetric_stencil_sources_match_destinations(self):
        cart = _cart()
        dg = dist_graph_from_cart(cart)
        for u in range(dg.size):
            assert sorted(dg.sources_of(u)) == sorted(dg.destinations_of(u))

    def test_inconsistent_lists_rejected(self):
        job = SimMPI(num_nodes=1, processes_per_node=2)
        with pytest.raises(SimulationError):
            DistGraphComm(job, sources=[[1], []], destinations=[[], []])

    def test_length_mismatch_rejected(self):
        job = SimMPI(num_nodes=1, processes_per_node=2)
        with pytest.raises(SimulationError):
            DistGraphComm(job, sources=[[], []], destinations=[[]])

    def test_rank_bounds_checked(self):
        job = SimMPI(num_nodes=1, processes_per_node=2)
        with pytest.raises(SimulationError):
            DistGraphComm(job, sources=[[5], []], destinations=[[], [0]])

    def test_repr(self):
        cart = _cart()
        assert "edges=" in repr(dist_graph_from_cart(cart))


class TestExchange:
    def test_ragged_exchange_round_trip(self):
        """Send (sender_rank, slot) pairs; check every delivery."""
        cart = _cart()
        dg = dist_graph_from_cart(cart)
        send = [
            [np.array([u, i]) for i in range(dg.outdegree(u))]
            for u in range(dg.size)
        ]
        recv, elapsed = dg.neighbor_alltoall(send)
        assert elapsed > 0
        for u in range(dg.size):
            assert len(recv[u]) == dg.indegree(u)
            for j, src in enumerate(dg.sources_of(u)):
                sender, slot = recv[u][j]
                assert sender == src
                assert dg.destinations_of(int(sender))[int(slot)] == u

    def test_matches_cart_neighbor_alltoall(self):
        """The dist-graph exchange delivers the same payloads as the
        dense Cartesian exchange (on valid slots)."""
        cart = _cart(mapper=HyperplaneMapper())
        dg = dist_graph_from_cart(cart)
        k = cart.num_neighbors
        dense_send = np.arange(cart.size * k, dtype=float).reshape(cart.size, k, 1)
        dense = cart.neighbor_alltoall(dense_send, synchronize=False)

        ragged_send = []
        for u in range(cart.size):
            bufs = []
            for i, v in enumerate(cart.neighbors(u)):
                if v is not None:
                    bufs.append(dense_send[u, i])
            ragged_send.append(bufs)
        recv, _ = dg.neighbor_alltoall(ragged_send, synchronize=False)

        for u in range(cart.size):
            ragged_iter = iter(recv[u])
            for j in range(k):
                if dense.valid[u, j]:
                    assert next(ragged_iter)[0] == dense.data[u, j, 0]

    def test_wrong_send_count_rejected(self):
        cart = _cart()
        dg = dist_graph_from_cart(cart)
        send = [[np.zeros(1)] * dg.outdegree(u) for u in range(dg.size)]
        send[0] = send[0][:-1]
        with pytest.raises(SimulationError):
            dg.neighbor_alltoall(send)

    def test_exchange_charges_clock_via_cart_model(self):
        cart = _cart()
        dg = dist_graph_from_cart(cart)
        cart.mpi.reset_clock()
        send = [
            [np.zeros(64) for _ in range(dg.outdegree(u))] for u in range(dg.size)
        ]
        _, elapsed = dg.neighbor_alltoall(send)
        assert elapsed > 0
        assert cart.mpi.clock >= elapsed

    def test_asymmetric_stencil(self):
        """One-directional stencil: sources and destinations differ."""
        job = SimMPI(num_nodes=2, processes_per_node=3)
        cart = cart_stencil_comm(job, [6], [1], reorder=False)  # send right
        dg = dist_graph_from_cart(cart)
        assert dg.destinations_of(0) == (1,)
        assert dg.sources_of(0) == ()
        assert dg.sources_of(5) == (4,)
        assert dg.destinations_of(5) == ()
        send = [[np.array([u])] if dg.outdegree(u) else [] for u in range(6)]
        recv, _ = dg.neighbor_alltoall(send)
        assert [len(r) for r in recv] == [0, 1, 1, 1, 1, 1]
        assert recv[3][0][0] == 2
