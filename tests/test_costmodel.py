"""Tests for the contention-aware communication cost model."""

import numpy as np
import pytest

from repro import (
    BlockedMapper,
    CartesianGrid,
    CommunicationModel,
    HyperplaneMapper,
    NetworkParameters,
    NodeAllocation,
    SingleSwitchTopology,
    FatTreeTopology,
    SimulationError,
    nearest_neighbor,
    vsc4,
)

PARAMS = NetworkParameters(
    nic_bandwidth=1e9,
    memory_bandwidth=4e9,
    inter_latency=1e-6,
    intra_latency=1e-7,
    per_message_overhead=1e-6,
)


def _setup(dims=(8, 6), nodes=4):
    grid = CartesianGrid(list(dims))
    stencil = nearest_neighbor(2)
    alloc = NodeAllocation.homogeneous(nodes, grid.size // nodes)
    return grid, stencil, alloc


class TestParameters:
    def test_validation(self):
        with pytest.raises(SimulationError):
            NetworkParameters(nic_bandwidth=0, memory_bandwidth=1e9)
        with pytest.raises(SimulationError):
            NetworkParameters(nic_bandwidth=1e9, memory_bandwidth=1e9, inter_latency=-1)

    def test_scaled_copy(self):
        p2 = PARAMS.scaled(nic_bandwidth=2e9)
        assert p2.nic_bandwidth == 2e9
        assert p2.memory_bandwidth == PARAMS.memory_bandwidth


class TestAlltoallModel:
    def test_monotone_in_message_size(self):
        grid, stencil, alloc = _setup()
        model = CommunicationModel(PARAMS)
        perm = np.arange(grid.size)
        times = [
            model.alltoall_time(grid, stencil, perm, alloc, m)
            for m in (0, 1024, 65536, 1 << 20)
        ]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_zero_bytes_is_overhead_dominated(self):
        grid, stencil, alloc = _setup()
        model = CommunicationModel(PARAMS)
        bd = model.alltoall_breakdown(grid, stencil, np.arange(grid.size), alloc, 0)
        assert bd.total == pytest.approx(bd.overhead + max(bd.nic_out, bd.nic_in, bd.memory))

    def test_negative_bytes_rejected(self):
        grid, stencil, alloc = _setup()
        model = CommunicationModel(PARAMS)
        with pytest.raises(SimulationError):
            model.alltoall_time(grid, stencil, np.arange(grid.size), alloc, -1)

    def test_breakdown_consistency(self):
        grid, stencil, alloc = _setup()
        model = CommunicationModel(PARAMS)
        bd = model.alltoall_breakdown(
            grid, stencil, np.arange(grid.size), alloc, 4096
        )
        assert bd.total == pytest.approx(
            bd.overhead + max(bd.nic_out, bd.nic_in, bd.memory, bd.uplink)
        )
        assert bd.bottleneck in {"nic_out", "nic_in", "memory", "uplink"}

    def test_better_mapping_is_faster_at_large_messages(self):
        grid = CartesianGrid([16, 12])
        stencil = nearest_neighbor(2)
        alloc = NodeAllocation.homogeneous(16, 12)
        model = CommunicationModel(PARAMS)
        blocked = BlockedMapper().map_ranks(grid, stencil, alloc)
        better = HyperplaneMapper().map_ranks(grid, stencil, alloc)
        m = 1 << 20
        assert model.alltoall_time(grid, stencil, better, alloc, m) < \
            model.alltoall_time(grid, stencil, blocked, alloc, m)

    def test_symmetric_stencil_balances_in_out(self):
        grid, stencil, alloc = _setup()
        model = CommunicationModel(PARAMS)
        bd = model.alltoall_breakdown(grid, stencil, np.arange(grid.size), alloc, 8192)
        assert bd.nic_out == pytest.approx(bd.nic_in)

    def test_single_node_no_nic_time(self):
        grid = CartesianGrid([4, 4])
        stencil = nearest_neighbor(2)
        alloc = NodeAllocation([16])
        model = CommunicationModel(PARAMS)
        bd = model.alltoall_breakdown(grid, stencil, np.arange(16), alloc, 8192)
        assert bd.nic_out == 0.0 and bd.nic_in == 0.0
        assert bd.memory > 0.0

    def test_edgeless_stencil(self):
        grid = CartesianGrid([2, 2])
        from repro import Stencil

        stencil = Stencil([(3, 0)])  # leaves the grid everywhere
        alloc = NodeAllocation([4])
        model = CommunicationModel(PARAMS)
        assert model.alltoall_time(grid, stencil, np.arange(4), alloc, 1024) == 0.0


class TestTopologyAware:
    def test_requires_topology(self):
        with pytest.raises(SimulationError):
            CommunicationModel(PARAMS, None, topology_aware=True)

    def test_uplink_term_increases_time(self):
        grid, stencil, alloc = _setup(dims=(16, 12), nodes=16)
        flat = CommunicationModel(PARAMS, FatTreeTopology(16, 4, 4.0))
        aware = CommunicationModel(
            PARAMS, FatTreeTopology(16, 4, 4.0), topology_aware=True
        )
        perm = np.arange(grid.size)
        m = 1 << 20
        assert aware.alltoall_time(grid, stencil, perm, alloc, m) >= \
            flat.alltoall_time(grid, stencil, perm, alloc, m)

    def test_single_switch_has_no_uplink_penalty(self):
        grid, stencil, alloc = _setup()
        aware = CommunicationModel(
            PARAMS, SingleSwitchTopology(4), topology_aware=True
        )
        bd = aware.alltoall_breakdown(grid, stencil, np.arange(grid.size), alloc, 8192)
        assert bd.uplink == 0.0


class TestSampling:
    def test_samples_near_base(self):
        grid, stencil, alloc = _setup()
        model = CommunicationModel(PARAMS)
        perm = np.arange(grid.size)
        base = model.alltoall_time(grid, stencil, perm, alloc, 8192)
        samples = model.sample_times(
            grid, stencil, perm, alloc, 8192,
            repetitions=100, rng=np.random.default_rng(1), outlier_probability=0.0,
        )
        assert samples.shape == (100,)
        assert (samples >= base).all()
        assert samples.mean() < base * 1.2

    def test_outliers_injected(self):
        grid, stencil, alloc = _setup()
        model = CommunicationModel(PARAMS)
        perm = np.arange(grid.size)
        samples = model.sample_times(
            grid, stencil, perm, alloc, 8192,
            repetitions=500, rng=np.random.default_rng(2), outlier_probability=0.2,
        )
        base = model.alltoall_time(grid, stencil, perm, alloc, 8192)
        assert (samples > 1.8 * base).any()

    def test_repetitions_validated(self):
        grid, stencil, alloc = _setup()
        model = CommunicationModel(PARAMS)
        with pytest.raises(SimulationError):
            model.sample_times(grid, stencil, np.arange(grid.size), alloc, 64, repetitions=0)


class TestMachinePresets:
    def test_vsc4_magnitude_calibration(self):
        """Blocked NN, N=50, 512 KiB lands near the paper's 64 ms."""
        machine = vsc4()
        grid = CartesianGrid([50, 48])
        stencil = nearest_neighbor(2)
        alloc = NodeAllocation.homogeneous(50, 48)
        model = machine.model(50)
        t = model.alltoall_time(
            grid, stencil, np.arange(2400), alloc, 512 * 1024
        )
        assert 0.03 < t < 0.13  # same order of magnitude as 64 ms
