"""Tests for MPI_Cart_sub slices and periodic-grid mapping."""

import numpy as np
import pytest

from repro import (
    CartesianGrid,
    HyperplaneMapper,
    KDTreeMapper,
    NodeAllocation,
    SimulationError,
    StencilStripsMapper,
    communication_edges,
    evaluate_mapping,
    nearest_neighbor,
    vsc4,
)
from repro.mpisim import SimMPI, cart_create


class TestCartSub:
    def _cart(self):
        job = SimMPI(vsc4(), num_nodes=4, processes_per_node=6)
        return cart_create(job, [4, 6], reorder=False)

    def test_row_slices(self):
        cart = self._cart()
        rows = cart.sub([False, True])
        assert len(rows) == 4
        for i, sub in enumerate(rows):
            assert sub.grid.dims == (6,)
            assert sub.fixed_coords == {0: i}
            assert [cart.coords(r)[0] for r in sub.members] == [i] * 6

    def test_column_slices(self):
        cart = self._cart()
        cols = cart.sub([True, False])
        assert len(cols) == 6
        assert all(sub.size == 4 for sub in cols)

    def test_keep_all_returns_single_full_slice(self):
        cart = self._cart()
        full = cart.sub([True, True])
        assert len(full) == 1
        assert full[0].size == cart.size
        assert full[0].members == tuple(range(24))

    def test_sub_rank_round_trip(self):
        cart = self._cart()
        rows = cart.sub([False, True])
        sub = rows[2]
        for local in range(sub.size):
            parent = sub.parent_rank(local)
            assert cart.coords(parent) == (2,) + sub.coords(local)

    def test_3d_plane_slices(self):
        job = SimMPI(vsc4(), num_nodes=4, processes_per_node=6)
        cart = cart_create(job, [2, 3, 4], reorder=False)
        planes = cart.sub([True, False, True])
        assert len(planes) == 3
        assert all(p.grid.dims == (2, 4) for p in planes)
        # the slices partition the communicator
        all_members = sorted(m for p in planes for m in p.members)
        assert all_members == list(range(24))

    def test_validation(self):
        cart = self._cart()
        with pytest.raises(SimulationError):
            cart.sub([True])
        with pytest.raises(SimulationError):
            cart.sub([False, False])

    def test_periods_inherited(self):
        job = SimMPI(vsc4(), num_nodes=4, processes_per_node=6)
        cart = cart_create(job, [4, 6], periods=[True, False], reorder=False)
        cols = cart.sub([True, False])
        assert cols[0].grid.periods == (True,)


class TestPeriodicGrids:
    """The mapping algorithms run unchanged on periodic grids; the
    evaluation counts wrap-around edges."""

    @pytest.mark.parametrize(
        "mapper",
        [HyperplaneMapper(), KDTreeMapper(), StencilStripsMapper()],
        ids=["hyperplane", "kd_tree", "stencil_strips"],
    )
    def test_periodic_mapping_still_beats_blocked(self, mapper):
        grid = CartesianGrid([16, 12], periods=[True, True])
        stencil = nearest_neighbor(2)
        alloc = NodeAllocation.homogeneous(16, 12)
        edges = communication_edges(grid, stencil)
        assert edges.shape[0] == 16 * 12 * 4  # full degree everywhere
        blocked = evaluate_mapping(grid, stencil, np.arange(192), alloc, edges=edges)
        perm = mapper.map_ranks(grid, stencil, alloc)
        cost = evaluate_mapping(grid, stencil, perm, alloc, edges=edges)
        assert cost.jsum < blocked.jsum

    def test_periodic_blocked_rows_cost(self):
        """Periodic wrap makes blocked rows pay the seam too."""
        grid_open = CartesianGrid([8, 8])
        grid_per = CartesianGrid([8, 8], periods=[True, False])
        stencil = nearest_neighbor(2)
        alloc = NodeAllocation.homogeneous(8, 8)
        open_cost = evaluate_mapping(
            grid_open, stencil, np.arange(64), alloc
        )
        per_cost = evaluate_mapping(grid_per, stencil, np.arange(64), alloc)
        # wrap edges between first and last row add 2*8 directed edges
        assert per_cost.jsum == open_cost.jsum + 16

    def test_mapping_ignores_periodicity_flag(self):
        """The paper's algorithms read only dims and stencil, so the
        permutation is identical with and without periods."""
        stencil = nearest_neighbor(2)
        alloc = NodeAllocation.homogeneous(6, 8)
        a = HyperplaneMapper().map_ranks(
            CartesianGrid([8, 6]), stencil, alloc
        )
        b = HyperplaneMapper().map_ranks(
            CartesianGrid([8, 6], periods=[True, True]), stencil, alloc
        )
        assert (a == b).all()
