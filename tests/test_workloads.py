"""Tests for the workload families and synthetic workload generators."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import (
    CartesianGrid,
    CartesianWorkload,
    GraphMapper,
    GraphWorkload,
    NodeAllocation,
    StencilProgramWorkload,
    as_workload,
    communication_edges,
    nearest_neighbor,
    nearest_neighbor_with_hops,
)
from repro.exceptions import MappingError, ReproError
from repro.metrics.cost import node_of_vertex
from repro.workloads import (
    clustered_workload,
    halo_exchange_volume,
    random_sparse_workload,
    stencil_workload,
)

from .conftest import grids, stencils_for


class TestStencilWorkload:
    def test_matches_graph_builder(self):
        grid = CartesianGrid([5, 5])
        w = stencil_workload(grid, nearest_neighbor(2))
        assert w.num_processes == 25
        assert w.num_edges == 2 * (4 * 5 + 5 * 4)
        assert w.is_symmetric()

    def test_degree_out(self):
        grid = CartesianGrid([3, 3])
        w = stencil_workload(grid, nearest_neighbor(2))
        deg = w.degree_out()
        assert deg[grid.rank_of([1, 1])] == 4
        assert deg[grid.rank_of([0, 0])] == 2


class TestRandomSparse:
    def test_shape_and_symmetry(self):
        w = random_sparse_workload(20, 3, seed=1)
        assert w.num_processes == 20
        assert w.is_symmetric()
        assert (w.edges[:, 0] != w.edges[:, 1]).all()  # no self loops

    def test_asymmetric_option(self):
        w = random_sparse_workload(20, 3, seed=1, symmetric=False)
        assert (w.edges[:, 0] != w.edges[:, 1]).all()

    def test_determinism(self):
        a = random_sparse_workload(15, 2, seed=9)
        b = random_sparse_workload(15, 2, seed=9)
        assert (a.edges == b.edges).all()

    def test_validation(self):
        with pytest.raises(ReproError):
            random_sparse_workload(1, 1)
        with pytest.raises(ReproError):
            random_sparse_workload(10, 0)
        with pytest.raises(ReproError):
            random_sparse_workload(10, 10)


class TestClustered:
    def test_structure(self):
        w = clustered_workload(4, 8, intra_degree=3, seed=2)
        assert w.num_processes == 32
        assert w.is_symmetric()
        # intra-cluster edges dominate
        cluster_of = w.edges // 8
        intra = (cluster_of[:, 0] == cluster_of[:, 1]).sum()
        assert intra > 0.8 * w.num_edges

    def test_graphmap_recovers_clusters(self):
        """With node size == cluster size, the mapper should cut only
        the coupling links."""
        w = clustered_workload(4, 8, intra_degree=4, inter_links=1, seed=3)
        alloc = NodeAllocation.homogeneous(4, 8)
        perm = GraphMapper(seed=1).map_graph(w.edges, w.num_processes, alloc)
        nodes = node_of_vertex(perm, alloc)
        # count cut directed edges; optimum = 2 per coupling * 3 couplings
        cut = (nodes[w.edges[:, 0]] != nodes[w.edges[:, 1]]).sum()
        assert cut <= 3 * 4  # small multiple of the optimum

    def test_validation(self):
        with pytest.raises(ReproError):
            clustered_workload(0, 4)
        with pytest.raises(ReproError):
            clustered_workload(2, 4, intra_degree=4)


class TestHaloVolume:
    def test_unit_offsets_send_faces(self):
        grid = CartesianGrid([4, 4])
        vols = halo_exchange_volume(grid, nearest_neighbor(2), (16, 32))
        assert vols[(1, 0)] == 32 * 8    # a row of the tile
        assert vols[(0, 1)] == 16 * 8    # a column

    def test_hops_send_thicker_slabs(self):
        grid = CartesianGrid([8, 8])
        vols = halo_exchange_volume(
            grid, nearest_neighbor_with_hops(2), (16, 16)
        )
        assert vols[(2, 0)] == 2 * vols[(1, 0)]
        assert vols[(3, 0)] == 3 * vols[(1, 0)]

    def test_element_bytes(self):
        grid = CartesianGrid([4, 4])
        vols = halo_exchange_volume(grid, nearest_neighbor(2), (8, 8), element_bytes=4)
        assert vols[(1, 0)] == 8 * 4

    def test_shape_validation(self):
        grid = CartesianGrid([4, 4])
        with pytest.raises(ReproError):
            halo_exchange_volume(grid, nearest_neighbor(2), (8,))


# ----------------------------------------------------------------------
# Hypothesis properties of the generators
# ----------------------------------------------------------------------


@given(grids(max_ndim=3, max_size=96), st.data())
@settings(max_examples=25, deadline=None)
def test_halo_volume_symmetric_under_offset_negation(grid, data):
    """A symmetric stencil sends the same slab both ways: the volume of
    offset ``o`` equals the volume of ``-o`` whenever both appear."""
    stencil = data.draw(stencils_for(grid.ndim))
    tile = tuple(data.draw(st.integers(1, 32)) for _ in range(grid.ndim))
    vols = halo_exchange_volume(grid, stencil, tile)
    for off, volume in vols.items():
        neg = tuple(-c for c in off)
        if neg in vols:
            assert vols[neg] == volume
        assert volume > 0


@given(st.integers(4, 40), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_random_sparse_seed_determinism(p, seed):
    """Same seed, same edges — across independent generator calls."""
    degree = min(3, p - 1)
    a = random_sparse_workload(p, degree, seed=seed)
    b = random_sparse_workload(p, degree, seed=seed)
    assert a.edges.tobytes() == b.edges.tobytes()
    assert a.num_processes == b.num_processes == p


@given(st.integers(2, 6), st.integers(4, 10), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_clustered_seed_determinism(clusters, size, seed):
    a = clustered_workload(clusters, size, intra_degree=3, seed=seed)
    b = clustered_workload(clusters, size, intra_degree=3, seed=seed)
    assert a.edges.tobytes() == b.edges.tobytes()


@given(st.integers(4, 40), st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_graph_workload_content_key_stability(p, seed):
    """Two GraphWorkloads over equal edges share cache/content keys —
    the identity every dedupe tier (memo, disk store, daemon result
    store) relies on — and pickling preserves both."""
    degree = min(3, p - 1)
    generated = random_sparse_workload(p, degree, seed=seed)
    one = as_workload(generated)
    two = GraphWorkload(p, generated.edges.copy(), name="renamed")
    assert one.cache_key() == two.cache_key()
    assert one.content_key() == two.content_key()
    assert one == two and hash(one) == hash(two)
    thawed = pickle.loads(pickle.dumps(one))
    assert thawed.content_key() == one.content_key()
    assert thawed.name == one.name
    # perturbing a single endpoint must change the identity
    if generated.num_edges:
        edges = generated.edges.copy()
        edges[0, 0] = (edges[0, 0] + 1) % p
        if edges[0, 0] != edges[0, 1]:
            assert GraphWorkload(p, edges).content_key() != one.content_key()


# ----------------------------------------------------------------------
# Workload families (the WorkloadBase protocol)
# ----------------------------------------------------------------------


class TestCartesianWorkload:
    def test_equivalent_to_plain_grid_stencil(self):
        grid = CartesianGrid([6, 4])
        stencil = nearest_neighbor(2)
        w = CartesianWorkload(grid, stencil)
        assert w.cartesian_equivalent() == (grid, stencil)
        assert w.grid is grid and w.stencil is stencil
        assert w.num_processes == 24
        assert (
            w.comm_edges().tobytes()
            == communication_edges(grid, stencil).tobytes()
        )

    def test_content_key_ignores_object_identity(self):
        a = CartesianWorkload(CartesianGrid([5, 5]), nearest_neighbor(2))
        b = CartesianWorkload(CartesianGrid([5, 5]), nearest_neighbor(2))
        assert a.content_key() == b.content_key()
        assert a == b

    def test_validation(self):
        with pytest.raises(ReproError, match="must be a CartesianGrid"):
            CartesianWorkload("grid", nearest_neighbor(2))
        with pytest.raises(ReproError, match="dimensional"):
            CartesianWorkload(CartesianGrid([4, 4]), nearest_neighbor(3))


class TestStencilProgramWorkload:
    def test_union_stencil_and_multiplicity(self):
        grid = CartesianGrid([6, 6])
        nn = nearest_neighbor(2)
        program = StencilProgramWorkload(
            grid, [("advect", nn), ("diffuse", nn)]
        )
        # Cartesian mappers see the union of the stages' offsets ...
        assert set(program.stencil.offsets) == set(nn.offsets)
        # ... but the cost edges keep per-stage multiplicity: the shared
        # exchange counts twice.
        single = communication_edges(grid, nn)
        assert program.num_edges == 2 * single.shape[0]
        assert program.cartesian_equivalent() is None

    def test_stage_labels_and_names(self):
        grid = CartesianGrid([4, 4])
        program = StencilProgramWorkload(
            grid, [nearest_neighbor(2), ("heat", nearest_neighbor_with_hops(2))]
        )
        assert [label for label, _ in program.stages] == ["stage0", "heat"]
        assert "stage0+heat" in program.name

    def test_content_key_tracks_stage_order(self):
        grid = CartesianGrid([4, 4])
        nn, hops = nearest_neighbor(2), nearest_neighbor_with_hops(2)
        ab = StencilProgramWorkload(grid, [("a", nn), ("b", hops)])
        ba = StencilProgramWorkload(grid, [("b", hops), ("a", nn)])
        assert ab.content_key() != ba.content_key()
        again = StencilProgramWorkload(grid, [("a", nn), ("b", hops)])
        assert ab.content_key() == again.content_key()

    def test_validation(self):
        grid = CartesianGrid([4, 4])
        with pytest.raises(ReproError, match="at least one stage"):
            StencilProgramWorkload(grid, [])
        with pytest.raises(ReproError, match="must hold a Stencil"):
            StencilProgramWorkload(grid, [("bad", 42)])


class TestGraphWorkload:
    def test_edge_validation(self):
        with pytest.raises(ReproError, match=r"shape \(m, 2\)"):
            GraphWorkload(4, np.zeros((3, 3), dtype=np.int64))
        with pytest.raises(ReproError, match="endpoints"):
            GraphWorkload(4, [[0, 4]])
        with pytest.raises(ReproError, match="positive"):
            GraphWorkload(0, [])

    def test_edges_are_read_only(self):
        w = GraphWorkload(4, [[0, 1], [1, 0]])
        with pytest.raises(ValueError):
            w.comm_edges()[0, 0] = 3

    def test_as_workload_coercion(self):
        generated = random_sparse_workload(10, 3, seed=7)
        w = as_workload(generated)
        assert isinstance(w, GraphWorkload)
        assert w.num_processes == 10 and w.name == generated.name
        assert as_workload(w) is w
        with pytest.raises(TypeError, match="cannot interpret"):
            as_workload(3.14)


class TestWorkloadsThroughEngine:
    def test_cartesian_workload_bit_identical_to_plain_request(self):
        """The tentpole invariant: a CartesianWorkload request shares
        caches, content keys, and results with the classic spelling."""
        from repro.engine.diskcache import request_payload

        grid = CartesianGrid([6, 4])
        stencil = nearest_neighbor(2)
        alloc = NodeAllocation.homogeneous(4, 6)
        plain = repro.MappingRequest(grid, stencil, alloc, "hyperplane")
        via = repro.MappingRequest(
            workload=CartesianWorkload(grid, stencil),
            alloc=alloc,
            mapper="hyperplane",
        )
        assert plain.instance_key == via.instance_key
        assert request_payload(plain) == request_payload(via)
        with repro.EvaluationEngine() as engine:
            a, b = engine.evaluate_batch([plain, via])
        assert a.perm.tobytes() == b.perm.tobytes()
        assert (a.cost.jsum, a.cost.jmax) == (b.cost.jsum, b.cost.jmax)

    def test_program_workload_weighs_repeated_stages(self):
        grid = CartesianGrid([6, 6])
        nn = nearest_neighbor(2)
        alloc = NodeAllocation.homogeneous(4, 9)
        single = repro.MappingRequest(grid, nn, alloc, "blocked")
        double = repro.MappingRequest(
            workload=StencilProgramWorkload(grid, [nn, nn]),
            alloc=alloc,
            mapper="blocked",
        )
        with repro.EvaluationEngine() as engine:
            one, two = engine.evaluate_batch([single, double])
        assert two.cost.jsum == 2 * one.cost.jsum
        assert two.cost.jmax == 2 * one.cost.jmax

    def test_graph_workload_needs_graph_mapper(self):
        w = as_workload(random_sparse_workload(24, 3, seed=5))
        alloc = NodeAllocation.homogeneous(4, 6)
        request = repro.MappingRequest(workload=w, alloc=alloc, mapper="blocked")
        with repro.EvaluationEngine() as engine:
            (result,) = engine.evaluate_batch([request])
            assert result.error is not None and "graphmap" in result.error
            good = repro.MappingRequest(workload=w, alloc=alloc, mapper="graphmap")
            (mapped,) = engine.evaluate_batch([good])
        assert mapped.error is None
        assert sorted(mapped.perm.tolist()) == list(range(24))

    def test_conflicting_grid_rejected(self):
        w = CartesianWorkload(CartesianGrid([4, 4]), nearest_neighbor(2))
        with pytest.raises(MappingError, match="workload alone"):
            repro.MappingRequest(
                grid=CartesianGrid([2, 8]),
                alloc=NodeAllocation.homogeneous(4, 4),
                mapper="blocked",
                workload=w,
            )

    def test_generator_output_must_be_coerced(self):
        generated = random_sparse_workload(16, 3, seed=2)
        with pytest.raises(MappingError, match="as_workload"):
            repro.MappingRequest(
                workload=generated,
                alloc=NodeAllocation.homogeneous(4, 4),
                mapper="graphmap",
            )
