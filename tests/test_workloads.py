"""Tests for the synthetic workload generators."""

import pytest

from repro import (
    CartesianGrid,
    GraphMapper,
    NodeAllocation,
    nearest_neighbor,
    nearest_neighbor_with_hops,
)
from repro.exceptions import ReproError
from repro.metrics.cost import node_of_vertex
from repro.workloads import (
    clustered_workload,
    halo_exchange_volume,
    random_sparse_workload,
    stencil_workload,
)


class TestStencilWorkload:
    def test_matches_graph_builder(self):
        grid = CartesianGrid([5, 5])
        w = stencil_workload(grid, nearest_neighbor(2))
        assert w.num_processes == 25
        assert w.num_edges == 2 * (4 * 5 + 5 * 4)
        assert w.is_symmetric()

    def test_degree_out(self):
        grid = CartesianGrid([3, 3])
        w = stencil_workload(grid, nearest_neighbor(2))
        deg = w.degree_out()
        assert deg[grid.rank_of([1, 1])] == 4
        assert deg[grid.rank_of([0, 0])] == 2


class TestRandomSparse:
    def test_shape_and_symmetry(self):
        w = random_sparse_workload(20, 3, seed=1)
        assert w.num_processes == 20
        assert w.is_symmetric()
        assert (w.edges[:, 0] != w.edges[:, 1]).all()  # no self loops

    def test_asymmetric_option(self):
        w = random_sparse_workload(20, 3, seed=1, symmetric=False)
        assert (w.edges[:, 0] != w.edges[:, 1]).all()

    def test_determinism(self):
        a = random_sparse_workload(15, 2, seed=9)
        b = random_sparse_workload(15, 2, seed=9)
        assert (a.edges == b.edges).all()

    def test_validation(self):
        with pytest.raises(ReproError):
            random_sparse_workload(1, 1)
        with pytest.raises(ReproError):
            random_sparse_workload(10, 0)
        with pytest.raises(ReproError):
            random_sparse_workload(10, 10)


class TestClustered:
    def test_structure(self):
        w = clustered_workload(4, 8, intra_degree=3, seed=2)
        assert w.num_processes == 32
        assert w.is_symmetric()
        # intra-cluster edges dominate
        cluster_of = w.edges // 8
        intra = (cluster_of[:, 0] == cluster_of[:, 1]).sum()
        assert intra > 0.8 * w.num_edges

    def test_graphmap_recovers_clusters(self):
        """With node size == cluster size, the mapper should cut only
        the coupling links."""
        w = clustered_workload(4, 8, intra_degree=4, inter_links=1, seed=3)
        alloc = NodeAllocation.homogeneous(4, 8)
        perm = GraphMapper(seed=1).map_graph(w.edges, w.num_processes, alloc)
        nodes = node_of_vertex(perm, alloc)
        # count cut directed edges; optimum = 2 per coupling * 3 couplings
        cut = (nodes[w.edges[:, 0]] != nodes[w.edges[:, 1]]).sum()
        assert cut <= 3 * 4  # small multiple of the optimum

    def test_validation(self):
        with pytest.raises(ReproError):
            clustered_workload(0, 4)
        with pytest.raises(ReproError):
            clustered_workload(2, 4, intra_degree=4)


class TestHaloVolume:
    def test_unit_offsets_send_faces(self):
        grid = CartesianGrid([4, 4])
        vols = halo_exchange_volume(grid, nearest_neighbor(2), (16, 32))
        assert vols[(1, 0)] == 32 * 8    # a row of the tile
        assert vols[(0, 1)] == 16 * 8    # a column

    def test_hops_send_thicker_slabs(self):
        grid = CartesianGrid([8, 8])
        vols = halo_exchange_volume(
            grid, nearest_neighbor_with_hops(2), (16, 16)
        )
        assert vols[(2, 0)] == 2 * vols[(1, 0)]
        assert vols[(3, 0)] == 3 * vols[(1, 0)]

    def test_element_bytes(self):
        grid = CartesianGrid([4, 4])
        vols = halo_exchange_volume(grid, nearest_neighbor(2), (8, 8), element_bytes=4)
        assert vols[(1, 0)] == 8 * 4

    def test_shape_validation(self):
        grid = CartesianGrid([4, 4])
        with pytest.raises(ReproError):
            halo_exchange_volume(grid, nearest_neighbor(2), (8,))
