"""The typed persistent store family and the engine's disk tiers.

Covers the persistence layer's failure modes — truncated/corrupt
entries count as misses (never errors) for every store kind, concurrent
writers publish only complete entries, ``clear`` removes exactly the
store's own files — plus counter consistency under a threaded hammer
and the perm/cost/metric disk tiers warming a fresh engine.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro import (
    CartesianGrid,
    EvaluationEngine,
    MappingRequest,
    NodeAllocation,
    nearest_neighbor,
)
from repro.engine import DiskEdgeCache, DiskStore, weighted_bytes_metric
from repro.engine.diskcache import (
    MISSING,
    STORE_KINDS,
    instance_payload,
    mapper_payload,
    metric_payload,
    request_payload,
    stable_digest,
)

KEY = "a" * 64


def _instance():
    grid = CartesianGrid([4, 12])
    return grid, nearest_neighbor(2), NodeAllocation.homogeneous(4, 12)


class TestDiskStore:
    def test_round_trip_and_missing(self, tmp_path):
        store = DiskStore(tmp_path, "perm")
        assert store.load(KEY) is MISSING
        perm = np.arange(8, dtype=np.int64)
        assert store.store(KEY, (perm, None)) is True
        value = store.load(KEY)
        np.testing.assert_array_equal(value[0], perm)
        assert value[1] is None
        stats = store.stats()
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)
        assert stats.entries == 1 and stats.total_bytes > 0

    def test_stored_none_is_not_missing(self, tmp_path):
        store = DiskStore(tmp_path, "perm")
        store.store(KEY, None)
        assert store.load(KEY) is None  # a memoized rejection, not a miss

    @pytest.mark.parametrize("garbage", [b"", b"\x80", b"not a pickle at all"])
    def test_corrupt_entry_is_a_miss(self, tmp_path, garbage):
        store = DiskStore(tmp_path, "cost")
        store.store(KEY, {"x": 1})
        (path,) = tmp_path.glob("cost-*.pkl")
        path.write_bytes(garbage)
        assert store.load(KEY) is MISSING
        assert store.stats().misses == 1

    def test_truncated_pickle_is_a_miss(self, tmp_path):
        store = DiskStore(tmp_path, "result")
        store.store(KEY, ("perm", np.arange(64), None, {"m": 1.0}))
        (path,) = tmp_path.glob("result-*.pkl")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert store.load(KEY) is MISSING

    def test_corrupt_npy_is_a_miss(self, tmp_path):
        cache = DiskEdgeCache(tmp_path)
        grid, stencil, _ = _instance()
        cache.store(grid, stencil, np.zeros((6, 2), dtype=np.int64))
        (path,) = tmp_path.glob("edges-*.npy")
        path.write_bytes(b"")
        assert cache.load(grid, stencil) is None
        assert cache.stats().misses == 1

    def test_clear_removes_exactly_its_own_files(self, tmp_path):
        for kind in STORE_KINDS[1:]:
            DiskStore(tmp_path, kind).store(KEY, kind)
        grid, stencil, _ = _instance()
        edge_cache = DiskEdgeCache(tmp_path)
        edge_cache.store(grid, stencil, np.zeros((6, 2), dtype=np.int64))
        unrelated = tmp_path / "notes.txt"
        unrelated.write_text("keep me")
        decoy = tmp_path / "result-decoy.json"  # wrong suffix
        decoy.write_text("{}")

        assert DiskStore(tmp_path, "perm").clear() == 1
        assert DiskStore(tmp_path, "perm").stats().entries == 0
        for kind in ("cost", "metric", "result"):
            assert DiskStore(tmp_path, kind).stats().entries == 1
        assert edge_cache.stats().entries == 1
        assert edge_cache.clear() == 1
        assert unrelated.read_text() == "keep me"
        assert decoy.exists()

    def test_kinds_do_not_collide_on_one_key(self, tmp_path):
        DiskStore(tmp_path, "cost").store(KEY, "cost-value")
        DiskStore(tmp_path, "metric").store(KEY, "metric-value")
        assert DiskStore(tmp_path, "cost").load(KEY) == "cost-value"
        assert DiskStore(tmp_path, "metric").load(KEY) == "metric-value"

    def test_unwritable_directory_degrades_to_noop(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where the cache dir should be")
        store = DiskStore(target, "perm")
        assert store.store(KEY, 1) is False
        assert store.load(KEY) is MISSING
        assert store.stats().stores == 0


class TestCounterConsistency:
    """Satellite: ``_hits``/``_misses``/``_stores`` are bumped from
    concurrent engine worker threads; unguarded ``+= 1`` loses updates."""

    THREADS = 8
    OPS = 60

    def test_disk_store_counters_survive_a_threaded_hammer(self, tmp_path):
        store = DiskStore(tmp_path, "perm")
        hot = stable_digest("hot")
        store.store(hot, 0)
        barrier = threading.Barrier(self.THREADS)

        def hammer(worker: int) -> None:
            barrier.wait()
            for i in range(self.OPS):
                store.load(hot)  # hit
                store.load(stable_digest(f"absent-{worker}-{i}"))  # miss
                store.store(stable_digest(f"w{worker}-{i}"), i)

        threads = [
            threading.Thread(target=hammer, args=(w,))
            for w in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        stats = store.stats()
        total = self.THREADS * self.OPS
        assert stats.hits == total
        assert stats.misses == total
        assert stats.stores == total + 1
        assert stats.hits + stats.misses == 2 * total

    def test_edge_cache_counters_survive_a_threaded_hammer(self, tmp_path):
        cache = DiskEdgeCache(tmp_path)
        grid, stencil, _ = _instance()
        cache.store(grid, stencil, np.zeros((6, 2), dtype=np.int64))
        missing = CartesianGrid([3, 3])
        barrier = threading.Barrier(self.THREADS)

        def hammer() -> None:
            barrier.wait()
            for _ in range(self.OPS):
                assert cache.load(grid, stencil) is not None
                assert cache.load(missing, stencil) is None

        threads = [
            threading.Thread(target=hammer) for _ in range(self.THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        stats = cache.stats()
        total = self.THREADS * self.OPS
        assert (stats.hits, stats.misses, stats.stores) == (total, total, 1)


def _process_writer(args) -> bool:
    directory, key, worker = args
    store = DiskStore(directory, "result")
    payload = (np.full(4096, worker, dtype=np.int64), None, None, {})
    ok = True
    for _ in range(20):
        ok &= store.store(key, payload)
        value = store.load(key)
        # Readers must only ever observe a complete published entry:
        # a homogeneous array from *some* writer, never torn bytes.
        if value is MISSING or len(set(value[0].tolist())) != 1:
            return False
    return ok


class TestConcurrentWriters:
    def test_multi_process_writers_publish_only_complete_entries(self, tmp_path):
        key = stable_digest("contested")
        with ProcessPoolExecutor(max_workers=4) as pool:
            outcomes = list(
                pool.map(
                    _process_writer,
                    [(str(tmp_path), key, w) for w in range(4)],
                )
            )
        assert all(outcomes)
        # and the survivor is a valid entry
        value = DiskStore(tmp_path, "result").load(key)
        assert value is not MISSING and len(value) == 4

    def test_tmp_files_never_linger_after_publish(self, tmp_path):
        store = DiskStore(tmp_path, "perm")
        for i in range(10):
            store.store(stable_digest(str(i)), i)
        assert list(tmp_path.glob("*.tmp")) == []


class TestStableKeys:
    def test_instance_payload_is_structural(self):
        grid, stencil, alloc = _instance()
        again = (
            CartesianGrid([4, 12]),
            nearest_neighbor(2),
            NodeAllocation.homogeneous(4, 12),
        )
        assert instance_payload(grid, stencil, alloc) == instance_payload(*again)

    def test_mapper_payload_rejects_instances(self):
        from repro.engine.registry import resolve_mapper

        assert mapper_payload("blocked") is not None
        assert mapper_payload(resolve_mapper("blocked")) is None

    def test_metric_payload_rejects_exotic_params(self):
        from repro.engine.metrics import MetricSpec
        from repro.workloads import halo_exchange_volume

        grid, stencil, _ = _instance()
        spec = weighted_bytes_metric(
            halo_exchange_volume(grid, stencil, (8, 8), 4)
        )
        assert metric_payload(spec) is not None
        exotic = MetricSpec("custom", (("fn", object()),))
        assert metric_payload(exotic) is None

    def test_request_payload_stability_and_uncacheables(self):
        from repro.engine.registry import resolve_mapper

        grid, stencil, alloc = _instance()
        request = MappingRequest(grid, stencil, alloc, "blocked")
        twin = MappingRequest(
            CartesianGrid([4, 12]),
            nearest_neighbor(2),
            NodeAllocation.homogeneous(4, 12),
            "blocked",
        )
        assert request_payload(request) == request_payload(twin)
        other = MappingRequest(grid, stencil, alloc, "hyperplane")
        assert request_payload(request) != request_payload(other)
        # explicit permutations key by content digest
        perm = np.arange(grid.size, dtype=np.int64)
        with_perm = MappingRequest(grid, stencil, alloc, "blocked", perm=perm)
        same_perm = MappingRequest(
            grid, stencil, alloc, "blocked", perm=perm.copy()
        )
        assert request_payload(with_perm) == request_payload(same_perm)
        assert request_payload(with_perm) != request_payload(request)
        # uncacheables
        instance_mapper = MappingRequest(
            grid, stencil, alloc, resolve_mapper("blocked")
        )
        assert request_payload(instance_mapper) is None
        assert request_payload(("opaque", 0)) is None
        assert request_payload("not a request") is None


class TestEngineDiskTiers:
    def _requests(self):
        grid, stencil, alloc = _instance()
        metric = weighted_bytes_metric(
            __import__("repro.workloads", fromlist=["halo_exchange_volume"])
            .halo_exchange_volume(grid, stencil, (8, 8), 4)
        )
        return [
            MappingRequest(
                grid, stencil, alloc, name, metrics=(metric,)
            )
            for name in ("blocked", "hyperplane", "nodecart")
        ]

    @staticmethod
    def _signature(result):
        return (
            None if result.cost is None else result.cost.jsum,
            None if result.cost is None else result.cost.jmax,
            None if result.perm is None else result.perm.tobytes(),
            result.error,
            tuple(sorted(result.metrics.items())),
        )

    def test_fresh_engine_serves_perm_cost_metric_from_disk(self, tmp_path):
        with EvaluationEngine(max_workers=1, disk_cache_dir=tmp_path) as cold:
            reference = [
                self._signature(r) for r in cold.evaluate_batch(self._requests())
            ]
            stores = cold.disk_store_stats()
            assert stores["perm"].stores == 3
            assert stores["cost"].stores == 3
            assert stores["metric"].stores == 3

        with EvaluationEngine(max_workers=1, disk_cache_dir=tmp_path) as warm:
            warmed = [
                self._signature(r) for r in warm.evaluate_batch(self._requests())
            ]
            stores = warm.disk_store_stats()
        assert warmed == reference
        assert stores["perm"].hits == 3 and stores["perm"].stores == 0
        assert stores["cost"].hits == 3 and stores["cost"].stores == 0
        assert stores["metric"].hits == 3 and stores["metric"].stores == 0

    def test_mapper_rejections_are_memoized_on_disk(self, tmp_path):
        grid = CartesianGrid([5, 7])  # nodecart rejects non-factorable splits?
        stencil = nearest_neighbor(2)
        alloc = NodeAllocation.homogeneous(5, 7)
        with EvaluationEngine(max_workers=1, disk_cache_dir=tmp_path) as engine:
            perm, error = engine.permutation(grid, stencil, alloc, "nodecart")
        with EvaluationEngine(max_workers=1, disk_cache_dir=tmp_path) as engine:
            again = engine.permutation(grid, stencil, alloc, "nodecart")
            stats = engine.disk_store_stats()["perm"]
        assert (perm is None) == (again[0] is None)
        assert again[1] == error
        assert stats.hits == 1

    def test_disabled_disk_layer_keeps_store_stats_empty(self):
        with EvaluationEngine(max_workers=1, disk_cache_dir=None) as engine:
            engine.evaluate_batch(self._requests()[:1])
            # None unless REPRO_CACHE_DIR leaks in from the environment
            stats = engine.disk_store_stats()
        assert set(stats) <= {"edges", "perm", "cost", "metric"}

    def test_corrupt_store_entry_falls_back_to_compute(self, tmp_path):
        requests = self._requests()
        with EvaluationEngine(max_workers=1, disk_cache_dir=tmp_path) as cold:
            reference = [
                self._signature(r) for r in cold.evaluate_batch(requests)
            ]
        for path in tmp_path.glob("perm-*.pkl"):
            path.write_bytes(b"\x00garbage")
        with EvaluationEngine(max_workers=1, disk_cache_dir=tmp_path) as warm:
            warmed = [
                self._signature(r) for r in warm.evaluate_batch(requests)
            ]
            stats = warm.disk_store_stats()["perm"]
        assert warmed == reference
        assert stats.misses == 3 and stats.stores == 3  # recomputed + republished


class TestSweepFingerprint:
    def _spec(self, mapper="blocked"):
        from repro.sweep import InstanceSpec, SweepSpec

        return SweepSpec(
            instances=[
                InstanceSpec.from_nodes(4, 12),
                InstanceSpec.from_nodes(6, 8),
            ],
            stencils=["nearest_neighbor"],
            mappers=[mapper, "hyperplane"],
        )

    def test_fingerprint_is_stable_across_specs(self):
        assert self._spec().fingerprint() == self._spec().fingerprint()

    def test_fingerprint_distinguishes_content(self):
        assert self._spec().fingerprint() != self._spec("nodecart").fingerprint()

    def test_fingerprint_covers_uncacheable_cells(self):
        from repro.engine.registry import resolve_mapper

        spec = self._spec(resolve_mapper("blocked"))
        digest = spec.fingerprint()
        assert isinstance(digest, str) and len(digest) == 64


class TestPrune:
    """LRU eviction across every store kind sharing one directory."""

    @staticmethod
    def _fill(tmp_path, ages):
        """One entry per store kind, mtimes spread by *ages* seconds ago."""
        import os
        import time

        from repro.engine.diskcache import prune  # noqa: F401 - import check

        grid, stencil, _ = _instance()
        edge = DiskEdgeCache(tmp_path)
        edge.store(grid, stencil, np.arange(40, dtype=np.int64).reshape(-1, 2))
        for kind in STORE_KINDS[1:]:
            DiskStore(tmp_path, kind).store(KEY, list(range(50)))
        now = time.time()
        paths = sorted(tmp_path.iterdir())
        assert len(paths) == len(STORE_KINDS)
        for path, age in zip(paths, ages):
            os.utime(path, (now - age, now - age))
        return edge, grid, stencil

    def test_prune_to_zero_clears_every_kind(self, tmp_path):
        from repro.engine.diskcache import prune

        self._fill(tmp_path, [10] * len(STORE_KINDS))
        removed = prune(tmp_path, 0)
        assert sum(removed.values()) == len(STORE_KINDS)
        assert set(removed) == set(STORE_KINDS)
        assert not list(tmp_path.iterdir())

    def test_prune_respects_budget_and_evicts_oldest_first(self, tmp_path):
        from repro.engine.diskcache import prune

        # ages descending with the edge entry oldest
        self._fill(tmp_path, [500, 400, 300, 200, 100])
        sizes = {p.name: p.stat().st_size for p in tmp_path.iterdir()}
        total = sum(sizes.values())
        oldest = max(tmp_path.iterdir(), key=lambda p: 500 - p.stat().st_mtime)
        budget = total - 1  # one eviction suffices
        prune(tmp_path, budget)
        left = {p.name for p in tmp_path.iterdir()}
        assert oldest.name not in left
        assert len(left) == len(STORE_KINDS) - 1
        assert sum(p.stat().st_size for p in tmp_path.iterdir()) <= budget

    def test_prune_under_budget_is_a_no_op(self, tmp_path):
        from repro.engine.diskcache import prune

        self._fill(tmp_path, [10] * len(STORE_KINDS))
        before = sorted(p.name for p in tmp_path.iterdir())
        removed = prune(tmp_path, 1 << 30)
        assert sum(removed.values()) == 0
        assert sorted(p.name for p in tmp_path.iterdir()) == before

    def test_load_refreshes_recency(self, tmp_path):
        """A hit bumps mtime, protecting the entry from the next prune."""
        from repro.engine.diskcache import prune

        edge, grid, stencil = self._fill(tmp_path, [500, 100, 100, 100, 100])
        # the edge entry is oldest; a load should move it to the front
        assert edge.load(grid, stencil) is not None
        total = sum(p.stat().st_size for p in tmp_path.iterdir())
        prune(tmp_path, total - 1)
        assert edge.load(grid, stencil) is not None  # survived

    def test_store_load_refreshes_recency(self, tmp_path):
        from repro.engine.diskcache import prune

        self._fill(tmp_path, [100, 500, 100, 100, 100])
        store = DiskStore(tmp_path, STORE_KINDS[1])
        assert store.load(KEY) is not MISSING  # bumps mtime
        total = sum(p.stat().st_size for p in tmp_path.iterdir())
        prune(tmp_path, total - 1)
        assert store.load(KEY) is not MISSING  # survived

    def test_foreign_files_never_touched(self, tmp_path):
        from repro.engine.diskcache import prune

        self._fill(tmp_path, [10] * len(STORE_KINDS))
        foreign = tmp_path / "notes.txt"
        foreign.write_text("keep me")
        prune(tmp_path, 0)
        assert foreign.exists()
        assert [p.name for p in tmp_path.iterdir()] == ["notes.txt"]

    def test_missing_directory_prunes_nothing(self, tmp_path):
        from repro.engine.diskcache import prune

        removed = prune(tmp_path / "never-created", 0)
        assert sum(removed.values()) == 0

    def test_negative_budget_rejected(self, tmp_path):
        from repro.engine.diskcache import prune

        with pytest.raises(ValueError, match="max_bytes"):
            prune(tmp_path, -1)

    def test_ttl_evicts_only_expired_entries(self, tmp_path):
        from repro.engine.diskcache import prune

        # two entries well past the TTL, the rest recent
        self._fill(tmp_path, [5000, 4000, 10, 10, 10])
        removed = prune(tmp_path, ttl=3600)
        assert sum(removed.values()) == 2
        assert len(list(tmp_path.iterdir())) == len(STORE_KINDS) - 2

    def test_ttl_alone_ignores_size(self, tmp_path):
        from repro.engine.diskcache import prune

        self._fill(tmp_path, [10] * len(STORE_KINDS))
        removed = prune(tmp_path, ttl=3600)
        assert sum(removed.values()) == 0
        assert len(list(tmp_path.iterdir())) == len(STORE_KINDS)

    def test_ttl_combines_with_size_budget(self, tmp_path):
        import time

        from repro.engine.diskcache import prune

        # one expired entry; the budget then forces one more eviction
        # among the survivors (oldest first)
        self._fill(tmp_path, [5000, 400, 300, 200, 100])
        survivors_total = sum(
            p.stat().st_size
            for p in tmp_path.iterdir()
            if p.stat().st_mtime > time.time() - 3600
        )
        removed = prune(tmp_path, survivors_total - 1, ttl=3600)
        assert sum(removed.values()) == 2
        assert (
            sum(p.stat().st_size for p in tmp_path.iterdir())
            <= survivors_total - 1
        )

    def test_no_policy_rejected(self, tmp_path):
        from repro.engine.diskcache import prune

        with pytest.raises(ValueError, match="max_bytes, ttl"):
            prune(tmp_path)

    def test_non_positive_ttl_rejected(self, tmp_path):
        from repro.engine.diskcache import prune

        with pytest.raises(ValueError, match="ttl"):
            prune(tmp_path, ttl=0)
