"""Tests for the simulated MPI layer."""

import numpy as np
import pytest

from repro import (
    HyperplaneMapper,
    NodeAllocation,
    SimulationError,
    nearest_neighbor,
    vsc4,
)
from repro.mpisim import (
    SimMPI,
    cart_create,
    cart_stencil_comm,
    neighbor_alltoall,
)
from repro.grid.grid import CartesianGrid


class TestSimMPI:
    def test_construction_with_machine(self):
        job = SimMPI(vsc4(), num_nodes=4, processes_per_node=8)
        assert job.world.size == 32
        assert job.model is not None
        assert job.clock == 0.0

    def test_construction_without_machine(self):
        job = SimMPI(num_nodes=2, processes_per_node=4)
        assert job.model is None
        assert job.world.size == 8

    def test_explicit_allocation(self):
        job = SimMPI(allocation=NodeAllocation([3, 5]))
        assert job.world.size == 8

    def test_missing_arguments(self):
        with pytest.raises(SimulationError):
            SimMPI()
        with pytest.raises(SimulationError):
            SimMPI(num_nodes=2)

    def test_clock_advances_and_resets(self):
        job = SimMPI(vsc4(), num_nodes=2, processes_per_node=4)
        job.advance("x", 1.5)
        assert job.clock == 1.5
        assert job.events == [("x", 1.5)]
        job.reset_clock()
        assert job.clock == 0.0 and job.events == []

    def test_negative_advance_rejected(self):
        job = SimMPI(num_nodes=2, processes_per_node=2)
        with pytest.raises(SimulationError):
            job.advance("x", -1.0)

    def test_barrier_charges_time(self):
        job = SimMPI(vsc4(), num_nodes=2, processes_per_node=4)
        job.world.barrier()
        assert job.clock > 0.0

    def test_barrier_free_without_machine(self):
        job = SimMPI(num_nodes=2, processes_per_node=4)
        job.world.barrier()
        assert job.clock == 0.0


class TestAllreduce:
    def test_sum(self):
        job = SimMPI(num_nodes=2, processes_per_node=2)
        values = np.arange(4.0)
        assert job.world.allreduce(values, "sum") == pytest.approx(6.0)

    def test_max_and_min(self):
        job = SimMPI(num_nodes=2, processes_per_node=2)
        values = np.array([[1.0, 5.0], [2.0, 4.0], [3.0, 3.0], [0.0, 6.0]])
        assert job.world.allreduce(values, "max").tolist() == [3.0, 6.0]
        assert job.world.allreduce(values, "min").tolist() == [0.0, 3.0]

    def test_shape_and_op_validation(self):
        job = SimMPI(num_nodes=2, processes_per_node=2)
        with pytest.raises(SimulationError):
            job.world.allreduce(np.zeros(3), "sum")
        with pytest.raises(SimulationError):
            job.world.allreduce(np.zeros(4), "median")

    def test_time_charged_with_machine(self):
        job = SimMPI(vsc4(), num_nodes=2, processes_per_node=2)
        job.world.allreduce(np.zeros(4), "sum")
        assert job.clock > 0.0


class TestNeighborAlltoallDataPlane:
    def test_line_exchange(self):
        grid = CartesianGrid([3])
        stencil = nearest_neighbor(1)  # offsets (+1,), (-1,)
        send = np.zeros((3, 2, 1))
        for r in range(3):
            send[r, :, 0] = r
        recv, valid = neighbor_alltoall(grid, stencil, send)
        # slot 0 (offset +1) arrives from the left neighbour
        assert valid[1, 0] and recv[1, 0, 0] == 0
        assert valid[2, 0] and recv[2, 0, 0] == 1
        assert not valid[0, 0]  # nobody left of rank 0
        # slot 1 (offset -1) arrives from the right neighbour
        assert valid[1, 1] and recv[1, 1, 0] == 2
        assert not valid[2, 1]

    def test_periodic_all_valid(self):
        grid = CartesianGrid([4], periods=[True])
        stencil = nearest_neighbor(1)
        send = np.arange(8.0).reshape(4, 2, 1)
        recv, valid = neighbor_alltoall(grid, stencil, send)
        assert valid.all()
        # rank 0 slot 0 from rank 3's slot 0
        assert recv[0, 0, 0] == send[3, 0, 0]

    def test_shape_validation(self):
        grid = CartesianGrid([3])
        with pytest.raises(SimulationError):
            neighbor_alltoall(grid, nearest_neighbor(1), np.zeros((3, 3, 1)))

    def test_fill_value(self):
        grid = CartesianGrid([2])
        stencil = nearest_neighbor(1)
        recv, valid = neighbor_alltoall(
            grid, stencil, np.ones((2, 2, 1)), fill_value=-7.0
        )
        assert recv[0, 0, 0] == -7.0  # invalid slot keeps the fill value

    def test_round_trip_identity(self):
        """Sending rank ids: every valid slot must hold shift(u, -R_j)."""
        grid = CartesianGrid([4, 3])
        stencil = nearest_neighbor(2)
        send = np.zeros((12, 4, 1))
        for r in range(12):
            send[r, :, 0] = r
        recv, valid = neighbor_alltoall(grid, stencil, send)
        for u in range(12):
            for j, off in enumerate(stencil.offsets):
                src = grid.shift(u, [-c for c in off])
                if src is None:
                    assert not valid[u, j]
                else:
                    assert valid[u, j] and recv[u, j, 0] == src


class TestCartComm:
    def _job(self):
        return SimMPI(vsc4(), num_nodes=4, processes_per_node=4)

    def test_cart_create_defaults_to_blocked(self):
        job = self._job()
        cart = cart_create(job, [4, 4], reorder=False)
        assert (cart.perm == np.arange(16)).all()
        assert cart.dims == (4, 4)
        assert cart.num_neighbors == 4

    def test_cart_create_with_mapper(self):
        job = self._job()
        cart = cart_create(job, [4, 4], mapper=HyperplaneMapper())
        assert sorted(cart.perm.tolist()) == list(range(16))

    def test_grid_size_must_match_job(self):
        from repro import ReproError

        job = self._job()
        with pytest.raises(ReproError):
            cart_create(job, [5, 4])

    def test_stencil_comm_from_flattened(self):
        job = self._job()
        cart = cart_stencil_comm(job, [4, 4], [1, 0, -1, 0])
        assert cart.stencil.offsets == ((1, 0), (-1, 0))

    def test_neighbors_listing(self):
        job = self._job()
        cart = cart_create(job, [4, 4], reorder=False)
        centre = cart.rank_at([1, 1])
        nbrs = cart.neighbors(centre)
        assert cart.rank_at([2, 1]) in nbrs
        corner = cart.rank_at([0, 0])
        assert cart.neighbors(corner).count(None) == 2

    def test_old_rank_and_node(self):
        job = self._job()
        cart = cart_create(job, [4, 4], mapper=HyperplaneMapper())
        for new_rank in range(16):
            old = cart.old_rank_of(new_rank)
            assert cart.perm[old] == new_rank
            assert cart.node_of(new_rank) == job.allocation.node_of(old)

    def test_exchange_charges_clock(self):
        job = self._job()
        cart = cart_create(job, [4, 4], reorder=False)
        send = np.ones((16, 4, 16))
        result = cart.neighbor_alltoall(send)
        assert result.elapsed > 0
        assert job.clock >= result.elapsed  # barrier + exchange

    def test_exchange_without_sync(self):
        job = self._job()
        cart = cart_create(job, [4, 4], reorder=False)
        job.reset_clock()
        result = cart.neighbor_alltoall(np.ones((16, 4, 2)), synchronize=False)
        barrier_events = [e for e in job.events if e[0] == "barrier"]
        assert not barrier_events

    def test_reorder_false_ignores_mapper(self):
        job = self._job()
        cart = cart_stencil_comm(
            job, [4, 4], nearest_neighbor(2), reorder=False,
            mapper=HyperplaneMapper(),
        )
        assert (cart.perm == np.arange(16)).all()

    def test_better_mapping_reduces_exchange_time(self):
        job_a = SimMPI(vsc4(), num_nodes=16, processes_per_node=12)
        job_b = SimMPI(vsc4(), num_nodes=16, processes_per_node=12)
        dims = [16, 12]
        cart_a = cart_create(job_a, dims, reorder=False)
        cart_b = cart_create(job_b, dims, mapper=HyperplaneMapper())
        send = np.ones((192, 4, 4096))
        ta = cart_a.neighbor_alltoall(send).elapsed
        tb = cart_b.neighbor_alltoall(send).elapsed
        assert tb < ta
