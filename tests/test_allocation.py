"""Tests for node allocations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import AllocationError, NodeAllocation


class TestConstruction:
    def test_homogeneous(self):
        a = NodeAllocation.homogeneous(4, 12)
        assert a.num_nodes == 4
        assert a.total_processes == 48
        assert a.is_homogeneous
        assert a.node_sizes == (12, 12, 12, 12)
        assert a.mean_node_size == 12.0

    def test_heterogeneous(self):
        a = NodeAllocation([3, 5, 2])
        assert not a.is_homogeneous
        assert a.total_processes == 10
        assert a.mean_node_size == pytest.approx(10 / 3)

    def test_for_total_with_remainder(self):
        a = NodeAllocation.for_total(50, 12)
        assert a.node_sizes == (12, 12, 12, 12, 2)

    def test_for_total_exact(self):
        a = NodeAllocation.for_total(48, 12)
        assert a.node_sizes == (12,) * 4

    def test_invalid_inputs(self):
        with pytest.raises(AllocationError):
            NodeAllocation([])
        with pytest.raises(AllocationError):
            NodeAllocation([3, 0])
        with pytest.raises(AllocationError):
            NodeAllocation.homogeneous(0, 4)
        with pytest.raises(AllocationError):
            NodeAllocation.homogeneous(4, 0)
        with pytest.raises(AllocationError):
            NodeAllocation.for_total(0, 4)

    def test_equality_and_hash(self):
        assert NodeAllocation([2, 3]) == NodeAllocation([2, 3])
        assert NodeAllocation([2, 3]) != NodeAllocation([3, 2])
        assert hash(NodeAllocation([2, 3])) == hash(NodeAllocation([2, 3]))

    def test_repr(self):
        assert "homogeneous(2, 4)" in repr(NodeAllocation.homogeneous(2, 4))
        assert "[1, 2]" in repr(NodeAllocation([1, 2]))


class TestRankPlacement:
    def test_blocked_placement(self):
        a = NodeAllocation([2, 3, 1])
        assert [a.node_of(r) for r in range(6)] == [0, 0, 1, 1, 1, 2]

    def test_node_of_ranks_array(self):
        a = NodeAllocation([2, 2])
        assert a.node_of_ranks().tolist() == [0, 0, 1, 1]

    def test_node_of_ranks_is_readonly(self):
        a = NodeAllocation([2, 2])
        with pytest.raises(ValueError):
            a.node_of_ranks()[0] = 1

    def test_ranks_on_node(self):
        a = NodeAllocation([2, 3, 1])
        assert list(a.ranks_on_node(1)) == [2, 3, 4]
        assert list(a.ranks_on_node(2)) == [5]

    def test_rank_bounds(self):
        a = NodeAllocation([2])
        with pytest.raises(AllocationError):
            a.node_of(2)
        with pytest.raises(AllocationError):
            a.ranks_on_node(1)

    def test_check_matches(self):
        a = NodeAllocation([2, 2])
        a.check_matches(4)
        with pytest.raises(AllocationError):
            a.check_matches(5)

    @given(st.lists(st.integers(1, 9), min_size=1, max_size=10))
    @settings(max_examples=50)
    def test_placement_consistency_property(self, sizes):
        a = NodeAllocation(sizes)
        nodes = a.node_of_ranks()
        counts = np.bincount(nodes, minlength=len(sizes))
        assert counts.tolist() == list(sizes)
        for node in range(a.num_nodes):
            for r in a.ranks_on_node(node):
                assert a.node_of(r) == node
