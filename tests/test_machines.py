"""Tests for the Table I machine presets."""

import pytest

from repro import MACHINES, juwels, supermuc_ng, vsc4
from repro.exceptions import AllocationError
from repro.hardware.topology import FatTreeTopology, IslandTopology


class TestPresets:
    def test_registry_complete(self):
        assert set(MACHINES) == {"VSC4", "SuperMUC-NG", "JUWELS"}

    def test_table1_sizes(self):
        assert vsc4().total_nodes == 790
        assert supermuc_ng().total_nodes == 6336
        assert juwels().total_nodes == 2271
        assert all(MACHINES[m]().cores_per_node == 48 for m in MACHINES)

    def test_topology_families(self):
        assert isinstance(vsc4().topology(100), FatTreeTopology)
        assert isinstance(supermuc_ng().topology(100), IslandTopology)
        assert isinstance(juwels().topology(100), FatTreeTopology)

    def test_allocation_shapes(self):
        a = vsc4().allocation(50)
        assert a.num_nodes == 50 and a.node_sizes[0] == 48
        b = vsc4().allocation(10, 24)
        assert b.node_sizes == (24,) * 10

    def test_allocation_bounds(self):
        with pytest.raises(AllocationError):
            vsc4().allocation(791)
        with pytest.raises(AllocationError):
            vsc4().allocation(10, 49)
        with pytest.raises(AllocationError):
            vsc4().allocation(0)

    def test_topology_bounds(self):
        with pytest.raises(AllocationError):
            juwels().topology(5000)

    def test_model_construction(self):
        m = supermuc_ng().model(100)
        assert m.topology is not None
        assert not m.topology_aware
        m2 = supermuc_ng().model(100, topology_aware=True)
        assert m2.topology_aware

    def test_machine_repr(self):
        assert "VSC4" in repr(vsc4())

    def test_juwels_fastest_nic(self):
        """InfiniBand JUWELS has the highest calibrated NIC bandwidth
        (its blocked baseline is the fastest in the paper's tables)."""
        assert juwels().params.nic_bandwidth > vsc4().params.nic_bandwidth
