"""The declarative sweep API: SweepSpec compilation, execution, ResultSet."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro import (
    CellOverride,
    InstanceSpec,
    MetricSpec,
    NodeAllocation,
    ResultSet,
    SweepSpec,
    run,
    run_stream,
)
from repro.engine import EvaluationEngine, ThreadBackend, weighted_bytes_metric
from repro.engine.metrics import as_metric_spec, register_metric
from repro.experiments.instances import Instance
from repro.metrics.cost import weighted_cut_bytes
from repro.sweep import WORKLOAD_AXIS
from repro.workloads import (
    CartesianWorkload,
    StencilProgramWorkload,
    as_workload,
    halo_exchange_volume,
    random_sparse_workload,
)


def small_spec(**kwargs) -> SweepSpec:
    return SweepSpec(
        instances=[InstanceSpec.from_nodes(n, 8) for n in (4, 6)],
        stencils=["nearest_neighbor"],
        mappers=["blocked", "hyperplane", "stencil_strips"],
        **kwargs,
    )


class TestInstanceSpec:
    def test_from_nodes_labels_and_params(self):
        spec = InstanceSpec.from_nodes(4, 8, 2)
        assert spec.label == "N4_n8_2d"
        assert dict(spec.params) == {
            "num_nodes": 4,
            "processes_per_node": 8,
            "ndims": 2,
        }
        assert spec.grid.size == 32
        assert spec.alloc.num_nodes == 4

    def test_coerce_instance_object(self):
        inst = Instance(10, 10, 2)
        spec = InstanceSpec.coerce(inst)
        assert spec.label == inst.label()
        assert spec.grid is inst.grid
        assert spec.alloc is inst.allocation

    def test_coerce_pair_and_int(self):
        by_count = InstanceSpec.coerce(4)
        assert dict(by_count.params)["processes_per_node"] == 48
        grid = repro.CartesianGrid([6, 4])
        alloc = NodeAllocation.homogeneous(4, 6)
        pair = InstanceSpec.coerce((grid, alloc))
        assert pair.grid is grid and pair.alloc is alloc

    def test_coerce_rejects_junk(self):
        with pytest.raises(TypeError):
            InstanceSpec.coerce(object())


class TestSweepSpec:
    def test_cell_order_is_deterministic(self):
        spec = small_spec()
        cells = spec.cells()
        assert [c.instance.label for c in cells[:3]] == ["N4_n8_2d"] * 3
        assert [c.mapper for c in cells[:3]] == [
            "blocked",
            "hyperplane",
            "stencil_strips",
        ]
        assert cells is spec.cells()  # compiled once
        assert len(spec) == 6

    def test_compile_skips_error_cells(self):
        # component stencils need >= 2 dimensions: a 1-d instance cannot
        # compile those cells but must not kill the others
        one_d = InstanceSpec.from_nodes(4, 4, 1)
        spec = SweepSpec(
            instances=[one_d, InstanceSpec.from_nodes(4, 4, 2)],
            stencils=["component"],
            mappers=["blocked"],
        )
        cells = spec.cells()
        assert cells[0].request is None and cells[0].error
        assert cells[1].request is not None
        assert len(spec.compile()) == 1

    def test_mapper_axis_accepts_instances_and_mappings(self):
        spec = SweepSpec(
            instances=[4],
            stencils=["nearest_neighbor"],
            mappers={"base": "blocked", "tuned": repro.HyperplaneMapper()},
        )
        assert [name for name, _ in spec.mappers] == ["base", "tuned"]
        bare = SweepSpec(
            instances=[4],
            stencils=["nearest_neighbor"],
            mappers=[repro.HyperplaneMapper()],
        )
        assert bare.mappers[0][0] == "hyperplane"

    def test_duplicate_axis_labels_rejected(self):
        nn = repro.nearest_neighbor(2)
        hops = repro.nearest_neighbor_with_hops(2)  # also auto-named by size?
        with pytest.raises(ValueError, match="duplicate stencil"):
            SweepSpec(
                instances=[4],
                stencils=[("s", nn), ("s", hops)],
                mappers=["blocked"],
            )
        with pytest.raises(ValueError, match="duplicate mapper"):
            SweepSpec(
                instances=[4],
                stencils=["nearest_neighbor"],
                mappers=[("m", "blocked"), ("m", "hyperplane")],
            )
        with pytest.raises(ValueError, match="duplicate instance"):
            SweepSpec(
                instances=[4, 4],
                stencils=["nearest_neighbor"],
                mappers=["blocked"],
            )

    def test_duplicate_allocation_labels_rejected(self):
        inst = InstanceSpec.from_nodes(4, 8)
        alloc = NodeAllocation.homogeneous(4, 8)
        with pytest.raises(ValueError, match="duplicate allocation"):
            SweepSpec(
                instances=[inst],
                stencils=["nearest_neighbor"],
                mappers=["blocked"],
                allocations=[alloc, alloc],  # both auto-labelled "nodes4"
            )

    def test_multiple_metric_failures_all_reported(self):
        def boom_a(ctx, perms, spec):
            raise RuntimeError("boom-a")

        def boom_b(ctx, perms, spec):
            raise RuntimeError("boom-b")

        register_metric("test_boom_a", boom_a, replace=True)
        register_metric("test_boom_b", boom_b, replace=True)
        spec = SweepSpec(
            instances=[4],
            stencils=["nearest_neighbor"],
            mappers=["blocked"],
            metrics=["test_boom_a", "test_boom_b"],
        )
        row = run(spec)[0]
        assert not row.ok
        assert "boom-a" in row.error and "boom-b" in row.error

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError, match="unknown stencil family"):
            SweepSpec(instances=[4], stencils=["moebius"], mappers=["blocked"])

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(instances=[], stencils=["nearest_neighbor"])
        with pytest.raises(ValueError):
            SweepSpec(instances=[4], stencils=[])
        with pytest.raises(ValueError):
            SweepSpec(instances=[4], mappers=[])

    def test_allocations_axis_mismatch_is_error_cell(self):
        inst = InstanceSpec.from_nodes(4, 8)
        good = NodeAllocation.homogeneous(8, 4)  # 32 processes, matches
        bad = NodeAllocation.homogeneous(3, 5)  # 15 processes, mismatch
        spec = SweepSpec(
            instances=[inst],
            stencils=["nearest_neighbor"],
            mappers=["blocked"],
            allocations=[("regular", good), ("broken", bad)],
        )
        results = run(spec)
        assert len(results) == 2
        ok_row, bad_row = results.rows
        assert ok_row.ok and ok_row.tags["allocation"] == "regular"
        assert not bad_row.ok and "AllocationError" in bad_row.error

    def test_overrides_skip_metrics_and_tags(self):
        vol_spec = MetricSpec("weighted_cut_bytes")
        spec = small_spec(
            tags={"suite": "unit"},
            overrides=[
                CellOverride(mapper="stencil_strips", skip=True),
                CellOverride(
                    instance="N4_n8_2d", tags={"marked": True}
                ),
                CellOverride(mapper="hyperplane", metrics=[vol_spec]),
            ],
        )
        cells = spec.cells()
        skipped = [c for c in cells if c.mapper == "stencil_strips"]
        assert all(c.request is None and "skipped" in c.error for c in skipped)
        marked = [c for c in cells if c.instance.label == "N4_n8_2d"]
        assert all(c.tags == {"suite": "unit", "marked": True} for c in marked)
        hyper = [c for c in cells if c.mapper == "hyperplane"]
        assert all(c.metrics == (vol_spec,) for c in hyper)


class TestRun:
    def test_rows_in_cell_order_and_values_match_engine(self):
        spec = small_spec()
        results = run(spec)
        assert [(r.instance, r.mapper) for r in results] == [
            (c.instance.label, c.mapper) for c in spec.cells()
        ]
        # cross-check one cell against the one-off evaluation API
        row = results.filter(instance="N6_n8_2d", mapper="hyperplane")[0]
        grid = repro.CartesianGrid(repro.dims_create(48, 2))
        perm = repro.HyperplaneMapper().map_ranks(
            grid, repro.nearest_neighbor(2), NodeAllocation.homogeneous(6, 8)
        )
        cost = repro.evaluate_mapping(
            grid, repro.nearest_neighbor(2), perm, NodeAllocation.homogeneous(6, 8)
        )
        assert (row.jsum, row.jmax) == (cost.jsum, cost.jmax)

    def test_backend_spec_string_and_shared_engine(self):
        spec = small_spec()
        serial = run(spec, backend="serial")
        with EvaluationEngine() as engine:
            shared = run(spec, backend=engine)
            again = run(spec, backend=engine)  # warm-cache second pass
        assert serial.to_rows() == shared.to_rows() == again.to_rows()

    def test_backend_instances_match_serial(self):
        spec = small_spec()
        expected = run(spec).to_rows()
        with ThreadBackend(max_workers=2) as backend:
            assert run(spec, backend=backend).to_rows() == expected

    def test_partial_failure_rows(self):
        # nodecart rejects non-factorisable node counts; the sweep keeps
        # going and carries the rejection as an error row
        spec = SweepSpec(
            instances=[InstanceSpec.from_nodes(7, 7)],
            stencils=["nearest_neighbor"],
            mappers=["blocked", "nodecart"],
        )
        results = run(spec)
        per_mapper = {row.mapper: row for row in results}
        assert per_mapper["blocked"].ok
        nodecart = per_mapper["nodecart"]
        assert nodecart.ok or nodecart.error is None  # may legitimately map
        assert len(results.failed()) + len(results.ok()) == len(results)

    def test_run_stream_yields_all_rows(self):
        spec = small_spec()
        streamed = sorted(
            ((r.instance, r.mapper, r.jsum) for r in run_stream(spec)),
        )
        batch = sorted((r.instance, r.mapper, r.jsum) for r in run(spec))
        assert streamed == batch

    def test_metric_through_sweep_matches_serial(self):
        inst = InstanceSpec.from_nodes(4, 8)
        stencil = repro.nearest_neighbor_with_hops(2)
        volumes = halo_exchange_volume(inst.grid, stencil, (8, 8), 4)
        spec = SweepSpec(
            instances=[inst],
            stencils=["nearest_neighbor_with_hops"],
            mappers=["blocked", "hyperplane"],
            metrics=[weighted_bytes_metric(volumes)],
        )
        for backend in (None, "process:2"):
            results = run(spec, backend=backend)
            for row in results:
                assert row.ok
                expected = weighted_cut_bytes(
                    inst.grid, stencil, row.result.perm, inst.alloc, volumes
                )
                got = (
                    row.metrics["weighted_cut_bytes"],
                    row.metrics["weighted_bottleneck_bytes"],
                )
                assert got == expected

    def test_custom_registered_metric(self):
        def cut_fraction(ctx, perms, spec):
            costs = repro.evaluate_mappings_batch(
                ctx.grid, ctx.stencil, perms, ctx.alloc, edges=ctx.edges
            )
            return [{"cut_fraction": c.cut_fraction} for c in costs]

        register_metric("test_cut_fraction", cut_fraction, replace=True)
        spec = SweepSpec(
            instances=[4],
            stencils=["nearest_neighbor"],
            mappers=["blocked"],
            metrics=["test_cut_fraction"],
        )
        row = run(spec)[0]
        assert row.ok and 0.0 <= row.metrics["cut_fraction"] <= 1.0

    def test_malformed_metric_rows_are_cell_error_not_crash(self):
        def malformed(ctx, perms, spec):
            return [(1.0, 2.0)] * perms.shape[0]  # tuples, not mappings

        register_metric("test_malformed", malformed, replace=True)
        spec = SweepSpec(
            instances=[4],
            stencils=["nearest_neighbor"],
            mappers=["blocked"],
            metrics=["test_malformed"],
        )
        row = run(spec)[0]  # must not raise
        assert not row.ok and "test_malformed" in row.error
        assert row.jsum is not None

    def test_value_error_stencil_factory_is_cell_error(self):
        def broken_factory(ndim):
            raise ValueError("no stencil for you")

        spec = SweepSpec(
            instances=[4],
            stencils=[("broken", broken_factory), "nearest_neighbor"],
            mappers=["blocked"],
        )
        results = run(spec)  # must not abort the healthy cell
        per_stencil = {row.stencil: row for row in results}
        assert not per_stencil["broken"].ok
        assert "no stencil for you" in per_stencil["broken"].error
        assert per_stencil["nearest_neighbor"].ok

    def test_cached_metric_survives_group_failure(self):
        calls = {"n": 0}

        def flaky(ctx, perms, spec):
            calls["n"] += 1
            if calls["n"] > 1:
                raise RuntimeError("flaked")
            return [{"flaky": 1.0}] * perms.shape[0]

        register_metric("test_flaky", flaky, replace=True)
        spec_one = SweepSpec(
            instances=[4], stencils=["nearest_neighbor"],
            mappers=["blocked"], metrics=["test_flaky"],
        )
        spec_two = SweepSpec(
            instances=[4], stencils=["nearest_neighbor"],
            mappers=["blocked", "hyperplane"], metrics=["test_flaky"],
        )
        with EvaluationEngine(max_workers=1) as engine:
            first = run(spec_one, backend=engine)
            assert first[0].ok and first[0].metrics == {"flaky": 1.0}
            second = run(spec_two, backend=engine)
        rows = {row.mapper: row for row in second}
        # blocked's value was cached in the first sweep: it must survive
        # the same spec failing for hyperplane's fresh permutation
        assert rows["blocked"].ok and rows["blocked"].metrics == {"flaky": 1.0}
        assert not rows["hyperplane"].ok and "flaked" in rows["hyperplane"].error

    def test_failing_metric_is_cell_error_not_crash(self):
        def broken(ctx, perms, spec):
            raise RuntimeError("boom")

        register_metric("test_broken", broken, replace=True)
        spec = SweepSpec(
            instances=[4],
            stencils=["nearest_neighbor"],
            mappers=["blocked"],
            metrics=["test_broken"],
        )
        row = run(spec)[0]
        assert not row.ok
        assert "boom" in row.error
        assert row.jsum is not None  # the cost still computed


def workload_spec(**kwargs) -> SweepSpec:
    """Three workload families on the workload axis, 16 processes."""
    alloc = NodeAllocation.homogeneous(4, 4)
    grid = repro.CartesianGrid([4, 4])
    nn = repro.nearest_neighbor(2)
    return SweepSpec(
        instances=[
            InstanceSpec.from_workload(
                CartesianWorkload(grid, nn), alloc, label="cartesian"
            ),
            InstanceSpec.from_workload(
                StencilProgramWorkload(grid, [("a", nn), ("b", nn)]),
                alloc,
                label="program",
            ),
            InstanceSpec.from_workload(
                as_workload(random_sparse_workload(16, 3, seed=4)),
                alloc,
                label="graph",
            ),
        ],
        stencils=[WORKLOAD_AXIS],
        mappers=["blocked", "graphmap"],
        **kwargs,
    )


class TestWorkloadAxis:
    def test_from_workload_labels_and_params(self):
        alloc = NodeAllocation.homogeneous(4, 4)
        w = CartesianWorkload(repro.CartesianGrid([4, 4]), repro.nearest_neighbor(2))
        spec = InstanceSpec.from_workload(w, alloc)
        assert spec.label == w.name
        assert dict(spec.params)["workload"] == w.name
        assert spec.workload is w and spec.grid == w.grid
        with pytest.raises(TypeError, match="as_workload"):
            InstanceSpec.from_workload(random_sparse_workload(16, 3, seed=1), alloc)

    def test_coerce_workload_pair(self):
        alloc = NodeAllocation.homogeneous(4, 4)
        w = as_workload(random_sparse_workload(16, 3, seed=1))
        spec = InstanceSpec.coerce((w, alloc))
        assert spec.workload is w and spec.grid is None

    def test_rows_and_structured_graph_split(self):
        results = run(workload_spec())
        assert len(results) == 6
        by = {(r.instance, r.mapper): r for r in results}
        # structured families evaluate everywhere; the irregular graph
        # needs graphmap and surfaces an actionable error elsewhere
        assert by[("cartesian", "blocked")].ok
        assert by[("program", "graphmap")].ok
        assert by[("graph", "graphmap")].ok
        graph_blocked = by[("graph", "blocked")]
        assert not graph_blocked.ok and "graphmap" in graph_blocked.error
        # stage multiplicity doubles the shared-exchange cost
        assert (
            by[("program", "blocked")].jsum
            == 2 * by[("cartesian", "blocked")].jsum
        )

    def test_byte_identical_across_backends(self):
        spec = workload_spec()
        serial = run(spec, backend="serial")
        with ThreadBackend(max_workers=2) as threads:
            threaded = run(spec, backend=threads)
        assert serial.to_json(indent=None) == threaded.to_json(indent=None)
        process = run(spec, backend="process:2")
        assert serial.to_json(indent=None) == process.to_json(indent=None)

    def test_workload_instance_on_stencil_axis_is_actionable_error(self):
        """Satellite: crossing a workload instance with a named stencil
        axis produces an error cell naming the offending labels."""
        alloc = NodeAllocation.homogeneous(4, 4)
        w = as_workload(random_sparse_workload(16, 3, seed=4))
        spec = SweepSpec(
            instances=[InstanceSpec.from_workload(w, alloc, label="mygraph")],
            stencils=["nearest_neighbor"],
            mappers=["blocked"],
        )
        (cell,) = spec.cells()
        assert cell.request is None
        assert "mygraph" in cell.error
        assert "nearest_neighbor" in cell.error
        assert WORKLOAD_AXIS in cell.error  # tells the user the fix

    def test_plain_instance_on_workload_axis_is_actionable_error(self):
        spec = SweepSpec(
            instances=[InstanceSpec.from_nodes(4, 4)],
            stencils=[WORKLOAD_AXIS],
            mappers=["blocked"],
        )
        (cell,) = spec.cells()
        assert cell.request is None
        assert "N4_n4_2d" in cell.error
        assert "from_workload" in cell.error

    def test_fingerprint_stable_across_reconstruction(self):
        """Independently rebuilt equal workloads fingerprint alike: the
        service daemon's dedupe key survives process boundaries."""
        assert workload_spec().fingerprint() == workload_spec().fingerprint()
        alloc = NodeAllocation.homogeneous(4, 4)
        changed = SweepSpec(
            instances=[
                InstanceSpec.from_workload(
                    as_workload(random_sparse_workload(16, 3, seed=5)),
                    alloc,
                    label="graph",
                )
            ],
            stencils=[WORKLOAD_AXIS],
            mappers=["blocked", "graphmap"],
        )
        assert changed.fingerprint() != workload_spec().fingerprint()

    def test_topology_metric_through_workload_sweep(self):
        topo = repro.Torus3DTopology((2, 2, 1))
        results = run(workload_spec(metrics=[repro.topology_cut_metric(topo)]))
        for row in results.ok():
            assert row.metrics["hop_cut"] >= row.metrics["hop_max"] >= 0.0
        # the Cartesian workload's hop costs match the serial evaluation
        from repro.metrics.cost import hop_weighted_cut

        grid = repro.CartesianGrid([4, 4])
        nn = repro.nearest_neighbor(2)
        alloc = NodeAllocation.homogeneous(4, 4)
        edges = repro.communication_edges(grid, nn)
        weights = np.array(
            [
                [float(topo.hop_distance(a, b)) for b in range(4)]
                for a in range(4)
            ]
        )
        row = results.filter(instance="cartesian", mapper="blocked")[0]
        total, bottleneck = hop_weighted_cut(
            edges, row.result.perm, alloc, weights
        )
        assert (row.metrics["hop_cut"], row.metrics["hop_max"]) == (
            total,
            bottleneck,
        )


class TestResultSet:
    def test_filter_group_pivot_column(self):
        results = run(small_spec(tags={"suite": "unit"}))
        assert len(results.filter(mapper="blocked")) == 2
        assert len(results.filter(suite="unit")) == len(results)
        assert len(results.filter(lambda r: r.jsum > 0)) == len(results)
        groups = results.group_by("instance")
        assert list(groups) == ["N4_n8_2d", "N6_n8_2d"]
        assert all(len(g) == 3 for g in groups.values())
        pair_groups = results.group_by("instance", "mapper")
        assert len(pair_groups) == 6
        pivot = results.pivot(values="jsum")
        assert set(pivot) == {"N4_n8_2d", "N6_n8_2d"}
        assert set(pivot["N4_n8_2d"]) == {"blocked", "hyperplane", "stencil_strips"}
        assert results.column("num_nodes") == [4, 4, 4, 6, 6, 6]

    def test_rows_to_json_and_back(self):
        results = run(small_spec(tags={"suite": "unit"}))
        round_tripped = ResultSet.from_rows(results.to_rows())
        assert round_tripped.to_rows() == results.to_rows()
        via_json = ResultSet.from_json(results.to_json(indent=None))
        assert via_json.to_rows() == results.to_rows()
        assert via_json[0].result is None  # live payloads do not survive

    def test_json_file_output(self, tmp_path):
        results = run(small_spec())
        path = tmp_path / "out.json"
        results.to_json(path)
        assert ResultSet.from_json(path.read_text()).to_rows() == results.to_rows()

    def test_csv_and_table_have_all_columns(self):
        results = run(small_spec(tags={"suite": "unit"}))
        csv_text = results.to_csv()
        header = csv_text.splitlines()[0].split(",")
        assert "jsum" in header and "tags.suite" in header
        assert len(csv_text.splitlines()) == len(results) + 1
        table = results.to_table()
        assert "hyperplane" in table

    def test_error_rows_serialize(self):
        spec = SweepSpec(
            instances=[InstanceSpec.from_nodes(4, 4, 1)],
            stencils=["component"],
            mappers=["blocked"],
        )
        results = run(spec)
        (row,) = results.to_rows()
        assert row["ok"] is False and row["error"]
        assert ResultSet.from_rows([row])[0].ok is False

    def test_with_columns_and_concat(self):
        results = run(small_spec())
        derived = results.with_columns(lambda r: {"double_jsum": 2 * r.jsum})
        assert derived.column("double_jsum") == [2 * v for v in results.column("jsum")]
        combined = results + derived
        assert len(combined) == 2 * len(results)

    def test_getitem_slice(self):
        results = run(small_spec())
        assert isinstance(results[1:3], ResultSet)
        assert len(results[1:3]) == 2


class TestMetricSpecs:
    def test_as_metric_spec(self):
        assert as_metric_spec("weighted_cut_bytes") == MetricSpec(
            "weighted_cut_bytes"
        )
        with pytest.raises(TypeError):
            as_metric_spec(42)

    def test_weighted_bytes_metric_is_hashable_and_picklable(self):
        import pickle

        spec = weighted_bytes_metric({(0, 1): 8, (1, 0): 16})
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))

    def test_unknown_metric_rejected_on_request(self):
        grid = repro.CartesianGrid([4, 4])
        alloc = NodeAllocation.homogeneous(4, 4)
        with pytest.raises(KeyError, match="unknown metric"):
            repro.MappingRequest(
                grid, repro.nearest_neighbor(2), alloc, "blocked",
                metrics=("no_such_metric",),
            )

    def test_request_normalises_metric_names(self):
        grid = repro.CartesianGrid([4, 4])
        alloc = NodeAllocation.homogeneous(4, 4)
        request = repro.MappingRequest(
            grid, repro.nearest_neighbor(2), alloc, "blocked",
            metrics=("weighted_cut_bytes",),
        )
        assert request.metrics == (MetricSpec("weighted_cut_bytes"),)


class TestPublicSurface:
    def test_top_level_exports(self):
        for name in (
            "sweep",
            "run",
            "run_stream",
            "SweepSpec",
            "InstanceSpec",
            "CellOverride",
            "SweepRow",
            "ResultSet",
            "MetricSpec",
            "register_metric",
            "list_metrics",
            "weighted_bytes_metric",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_module_docstring_example(self):
        spec = repro.SweepSpec(
            instances=[repro.InstanceSpec.from_nodes(n, 8) for n in (4, 8)],
            stencils=["nearest_neighbor"],
            mappers=["blocked", "hyperplane", "stencil_strips"],
        )
        results = repro.run(spec)
        pivot = results.pivot(values="jmax")
        assert set(pivot) == {"N4_n8_2d", "N8_n8_2d"}


def test_json_output_is_strict_rfc_json():
    """NaN/inf payloads must serialize to parseable strict JSON."""
    results = run(small_spec()).with_columns(
        lambda r: {"nanval": float("nan"), "infval": float("inf")}
    )
    text = results.to_json(indent=None)
    assert "NaN" not in text.replace('"NaN"', "")  # no bare NaN tokens
    parsed = json.loads(text)  # and json stdlib round-trips it
    row = parsed["rows"][0]["metrics"]
    assert row["nanval"] is None
    assert row["infval"] == {"$float": "Infinity"}
    restored = ResultSet.from_json(text)
    assert restored[0].metrics["infval"] == float("inf")
    assert restored[0].metrics["nanval"] is None


def test_string_infinity_payload_survives_round_trip():
    """A literal 'Infinity' string tag must not be coerced to a float."""
    results = run(small_spec(tags={"note": "Infinity"}))
    restored = ResultSet.from_json(results.to_json(indent=None))
    assert restored[0].tags["note"] == "Infinity"
    assert restored.to_rows() == results.to_rows()


def test_numpy_payloads_serialize_json_safe():
    results = run(small_spec()).with_columns(
        lambda r: {"np_val": np.int64(7), "np_f": np.float64(0.5)}
    )
    rows = results.to_rows()
    assert rows[0]["metrics"]["np_val"] == 7
    assert isinstance(rows[0]["metrics"]["np_val"], int)
    assert isinstance(rows[0]["metrics"]["np_f"], float)
