"""Tests for the experiment drivers (structure and key findings)."""

import pytest

from repro import BlockedMapper, HyperplaneMapper, StencilStripsMapper
from repro.experiments import (
    EvaluationContext,
    Instance,
    STENCIL_FAMILIES,
    ablation_hyperplane_order,
    ablation_nodecart_stencil_aware,
    ablation_strips_distortion,
    ablation_strips_serpentine,
    ablation_topology_aware,
    appendix_table,
    figure8_reductions,
    figure9_instantiation_times,
    instance_set,
    summarize_reductions,
)
from repro.experiments.throughput import FIGURE_MESSAGE_SIZES, speedup_series
from repro.experiments.report import (
    render_appendix_table,
    render_instantiation,
    render_reduction_summaries,
    render_scores,
    render_speedups,
)

FAST_MAPPERS = {
    "blocked": BlockedMapper(),
    "hyperplane": HyperplaneMapper(),
    "stencil_strips": StencilStripsMapper(),
}


@pytest.fixture(scope="module")
def small_context() -> EvaluationContext:
    """A small shared instance (8 nodes x 12) to keep the suite fast."""
    return EvaluationContext(8, 12, 2, mappers=FAST_MAPPERS)


class TestInstances:
    def test_instance_set_has_144_entries(self):
        instances = instance_set()
        assert len(instances) == 144

    def test_parameter_ranges(self):
        instances = instance_set()
        assert {i.num_nodes for i in instances} == set(range(10, 32, 3))
        assert {i.processes_per_node for i in instances} == set(range(10, 32, 3)) | {32}
        assert {i.ndims for i in instances} == {2, 3}

    def test_instance_grid_consistency(self):
        inst = Instance(13, 16, 2)
        assert inst.total_processes == 208
        assert inst.grid.size == 208
        assert inst.allocation.num_nodes == 13
        assert inst.label() == "N13_n16_2d"


class TestContext:
    def test_caches_are_reused(self, small_context):
        a = small_context.mapping("nearest_neighbor", "hyperplane")
        b = small_context.mapping("nearest_neighbor", "hyperplane")
        assert a is b
        ca = small_context.cost("nearest_neighbor", "hyperplane")
        cb = small_context.cost("nearest_neighbor", "hyperplane")
        assert ca is cb

    def test_scores_structure(self, small_context):
        scores = small_context.scores("nearest_neighbor")
        assert set(scores) == set(FAST_MAPPERS)
        assert all(v is not None for v in scores.values())

    def test_unknown_family(self, small_context):
        with pytest.raises(KeyError):
            small_context.stencil("moore")

    def test_families_cover_paper(self):
        assert set(STENCIL_FAMILIES) == {
            "nearest_neighbor",
            "nearest_neighbor_with_hops",
            "component",
        }


class TestThroughput:
    def test_speedup_series_structure(self, small_context):
        series = speedup_series(
            small_context,
            "VSC4",
            "nearest_neighbor",
            message_sizes=(1024, 65536),
            repetitions=20,
        )
        assert "blocked" not in series
        for cells in series.values():
            assert [c.message_size for c in cells] == [1024, 65536]
            assert all(c.speedup_over_blocked > 0 for c in cells)

    def test_speedup_grows_with_message_size(self, small_context):
        series = speedup_series(
            small_context,
            "VSC4",
            "nearest_neighbor",
            message_sizes=(256, 262144),
            repetitions=20,
        )
        cells = series["hyperplane"]
        assert cells[-1].speedup_over_blocked >= cells[0].speedup_over_blocked

    def test_unknown_machine(self, small_context):
        with pytest.raises(KeyError):
            speedup_series(small_context, "Fugaku", "nearest_neighbor")

    def test_figure_sizes_are_table_subset(self):
        from repro.experiments.tables import TABLE_MESSAGE_SIZES

        assert set(FIGURE_MESSAGE_SIZES) <= set(TABLE_MESSAGE_SIZES)


class TestTables:
    def test_table_structure(self, small_context):
        table = appendix_table(
            "JUWELS",
            small_context.num_nodes,
            context=small_context,
            message_sizes=(64, 1024),
            repetitions=10,
        )
        assert table.machine == "JUWELS"
        assert set(table.times) == set(STENCIL_FAMILIES)
        cell = table.cell("nearest_neighbor", "hyperplane", 1024)
        assert cell is not None and cell.value > 0
        assert set(table.mappers()) == set(FAST_MAPPERS)

    def test_render_table(self, small_context):
        table = appendix_table(
            "VSC4",
            small_context.num_nodes,
            context=small_context,
            message_sizes=(64,),
            repetitions=5,
        )
        text = render_appendix_table(table)
        assert "VSC4" in text and "nearest_neighbor" in text


class TestFigure8:
    def test_reductions_on_subset(self):
        instances = instance_set()[::24]  # 6 instances for speed
        red = figure8_reductions(
            "nearest_neighbor", mappers=dict(FAST_MAPPERS), instances=instances
        )
        assert "blocked" not in red
        for series in red.values():
            assert series["jsum"].shape == (len(instances),)
        summaries = summarize_reductions(red)
        assert {s.mapper for s in summaries} == {"hyperplane", "stencil_strips"}
        for s in summaries:
            assert 0 < s.jsum_median.value <= 1.1  # reductions, not increases

    def test_unknown_family_rejected(self):
        with pytest.raises(KeyError):
            figure8_reductions("moore")

    def test_render_summaries(self):
        instances = instance_set()[::48]
        red = figure8_reductions(
            "component", mappers=dict(FAST_MAPPERS), instances=instances
        )
        text = render_reduction_summaries(summarize_reductions(red))
        assert "median" in text


class TestFigure9:
    def test_instantiation_structure(self):
        context = EvaluationContext(4, 8, 2, mappers=FAST_MAPPERS)
        timings = figure9_instantiation_times(
            context=context, mappers=FAST_MAPPERS, repetitions=3,
            slow_repetitions=1,
        )
        assert set(timings) == set(FAST_MAPPERS)
        for t in timings.values():
            assert t.full.value > 0
            assert t.per_rank is not None and t.per_rank.value > 0
        text = render_instantiation(timings)
        assert "Hyperplane" in text


class TestAblations:
    def test_hyperplane_order_matters_for_hops(self):
        results = ablation_hyperplane_order(num_nodes=10)
        hops = results["nearest_neighbor_with_hops"]
        assert hops.jsum_ratio >= 1.0  # removing the ordering never helps

    def test_serpentine_ablation(self):
        results = ablation_strips_serpentine(num_nodes=10)
        assert all(r.jsum_ratio >= 1.0 for r in results.values())

    def test_distortion_ablation(self):
        results = ablation_strips_distortion(num_nodes=10)
        hops = results["nearest_neighbor_with_hops"]
        assert hops.jsum_ratio >= 1.0

    def test_nodecart_stencil_aware_helps_component(self):
        results = ablation_nodecart_stencil_aware(num_nodes=10)
        comp = results["component"]
        assert comp.jsum_ratio <= 1.0  # awareness can only help here

    def test_topology_aware_times(self):
        out = ablation_topology_aware("VSC4", num_nodes=10, message_size=65536)
        for times in out.values():
            assert times["topology_aware"] >= times["flat"]


class TestRendering:
    def test_render_scores_smoke(self, small_context):
        text = render_scores(
            {f: small_context.scores(f) for f in STENCIL_FAMILIES}
        )
        assert "Hyperplane" in text and "Jsum" in text

    def test_render_speedups_smoke(self, small_context):
        series = speedup_series(
            small_context, "VSC4", "component",
            message_sizes=(1024,), repetitions=5,
        )
        text = render_speedups(series)
        assert "1024" in text
