"""Marks the test suite as a package so ``from .conftest import ...`` works."""
