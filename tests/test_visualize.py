"""Tests for the text visualisation helpers."""

import numpy as np
import pytest

from repro import (
    CartesianGrid,
    HyperplaneMapper,
    NodeAllocation,
    NodecartMapper,
    RandomMapper,
    StencilStripsMapper,
    nearest_neighbor,
)
from repro.exceptions import ReproError
from repro.visualize import (
    NodeRegion,
    node_regions,
    render_mapping,
    render_region_summary,
)


class TestRenderMapping:
    def test_blocked_2d_rows(self):
        grid = CartesianGrid([3, 4])
        alloc = NodeAllocation.homogeneous(3, 4)
        text = render_mapping(grid, np.arange(12), alloc)
        lines = text.splitlines()
        assert lines[0] == "A A A A"
        assert lines[1] == "B B B B"
        assert lines[2] == "C C C C"

    def test_nodecart_blocks_render(self):
        grid = CartesianGrid([4, 4])
        alloc = NodeAllocation.homogeneous(4, 4)
        perm = NodecartMapper().map_ranks(grid, nearest_neighbor(2), alloc)
        lines = render_mapping(grid, perm, alloc).splitlines()
        assert lines[0] == "A A B B"
        assert lines[2] == "C C D D"

    def test_1d(self):
        grid = CartesianGrid([4])
        alloc = NodeAllocation([2, 2])
        assert render_mapping(grid, np.arange(4), alloc) == "A A B B"

    def test_3d_layer_selection(self):
        grid = CartesianGrid([2, 2, 2])
        alloc = NodeAllocation([4, 4])
        text0 = render_mapping(grid, np.arange(8), alloc, layer=0)
        text1 = render_mapping(grid, np.arange(8), alloc, layer=1)
        assert text0 == "A A\nA A"
        assert text1 == "B B\nB B"

    def test_layer_bounds(self):
        grid = CartesianGrid([2, 2, 2])
        alloc = NodeAllocation([8])
        with pytest.raises(ReproError):
            render_mapping(grid, np.arange(8), alloc, layer=2)

    def test_4d_rejected(self):
        grid = CartesianGrid([2, 2, 2, 2])
        alloc = NodeAllocation([16])
        with pytest.raises(ReproError):
            render_mapping(grid, np.arange(16), alloc)

    def test_many_nodes_glyphs_cycle(self):
        grid = CartesianGrid([70])
        alloc = NodeAllocation([1] * 70)
        text = render_mapping(grid, np.arange(70), alloc)
        assert len(text.split()) == 70  # does not crash past 62 glyphs


class TestNodeRegions:
    def test_rectangular_blocks(self):
        grid = CartesianGrid([4, 4])
        alloc = NodeAllocation.homogeneous(4, 4)
        perm = NodecartMapper().map_ranks(grid, nearest_neighbor(2), alloc)
        regions = node_regions(grid, perm, alloc)
        assert all(r.contiguous for r in regions)
        assert all(r.fill_ratio == 1.0 for r in regions)
        assert all(r.box_volume == 4 for r in regions)

    def test_hyperplane_regions_contiguous(self):
        grid = CartesianGrid([8, 6])
        alloc = NodeAllocation.homogeneous(4, 12)
        perm = HyperplaneMapper().map_ranks(grid, nearest_neighbor(2), alloc)
        regions = node_regions(grid, perm, alloc)
        assert all(r.contiguous for r in regions)
        assert sum(r.size for r in regions) == 48

    def test_strips_regions_contiguous(self):
        grid = CartesianGrid([10, 6])
        alloc = NodeAllocation.homogeneous(5, 12)
        perm = StencilStripsMapper().map_ranks(grid, nearest_neighbor(2), alloc)
        regions = node_regions(grid, perm, alloc)
        assert all(r.contiguous for r in regions)

    def test_random_regions_mostly_fragmented(self):
        grid = CartesianGrid([10, 10])
        alloc = NodeAllocation.homogeneous(10, 10)
        perm = RandomMapper(seed=5).map_ranks(grid, nearest_neighbor(2), alloc)
        regions = node_regions(grid, perm, alloc)
        assert sum(1 for r in regions if not r.contiguous) >= 5

    def test_summary_rendering(self):
        grid = CartesianGrid([4, 4])
        alloc = NodeAllocation.homogeneous(4, 4)
        regions = node_regions(grid, np.arange(16), alloc)
        text = render_region_summary(regions)
        assert "contiguous regions: 4/4" in text

    def test_region_dataclass(self):
        r = NodeRegion(node=0, size=4, bounding_box=((0, 1), (0, 3)), contiguous=True)
        assert r.box_volume == 8
        assert r.fill_ratio == 0.5
