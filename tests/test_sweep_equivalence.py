"""Equivalence: the sweep-routed drivers reproduce the pre-redesign numbers.

``tests/data/golden_predesign.json`` was captured from the drivers
*before* they were rerouted through ``repro.sweep.run``; every entry
here is deterministic across processes (integer scores, exact ratio
arithmetic, rng-free model times).  The hash-seeded sampling paths
(``measure_times`` and the appendix tables) are instead checked against
an inline re-derivation of the pre-redesign loop, which proves
byte-identity without fixing ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.engine import ProcessBackend
from repro.experiments.context import DEFAULT_MAPPERS, EvaluationContext
from repro.experiments.figure6 import figure6_context, figure6_scores
from repro.experiments.figure7 import figure7_context, figure7_scores
from repro.experiments.figure8 import figure8_reductions
from repro.experiments.figure9 import figure9_instantiation_times
from repro.experiments.instances import instance_set
from repro.experiments.scaling import scaling_sweep
from repro.experiments.ablations import ablation_hyperplane_order
from repro.experiments.tables import appendix_table
from repro.experiments.throughput import measure_times, resolve_machine
from repro.experiments.weighted import weighted_hops_experiment
from repro.metrics.stats import mean_ci

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "golden_predesign.json").read_text()
)


def normalize_scores(scores):
    return {
        family: {
            mapper: None if pair is None else list(pair)
            for mapper, pair in per_mapper.items()
        }
        for family, per_mapper in scores.items()
    }


@pytest.fixture(scope="module")
def context50():
    return figure6_context()


class TestGoldenEquivalence:
    def test_figure6_scores(self, context50):
        assert normalize_scores(figure6_scores(context50)) == GOLDEN["figure6_scores"]

    def test_figure7_scores(self):
        assert (
            normalize_scores(figure7_scores(figure7_context()))
            == GOLDEN["figure7_scores"]
        )

    def test_weighted(self, context50):
        outcome = weighted_hops_experiment("VSC4", context=context50)
        got = {
            name: [
                r.cut_bytes,
                r.bottleneck_bytes,
                r.model_time,
                r.speedup_over_blocked,
            ]
            for name, r in outcome.items()
        }
        assert got == GOLDEN["weighted"]

    def test_weighted_through_process_backend(self, context50):
        """The batch-level weighted metric is backend-independent."""
        with ProcessBackend(2) as backend:
            outcome = weighted_hops_experiment(
                "VSC4", context=context50, backend=backend
            )
        got = {
            name: [
                r.cut_bytes,
                r.bottleneck_bytes,
                r.model_time,
                r.speedup_over_blocked,
            ]
            for name, r in outcome.items()
        }
        assert got == GOLDEN["weighted"]

    def test_scaling(self):
        points = scaling_sweep(
            "VSC4", node_counts=(10, 25), family="nearest_neighbor"
        )
        got = {
            mapper: [
                [
                    p.num_nodes,
                    p.jsum,
                    p.jmax,
                    p.jsum_reduction,
                    p.jmax_reduction,
                    p.model_speedup,
                ]
                for p in pts
            ]
            for mapper, pts in points.items()
        }
        assert got == GOLDEN["scaling"]

    def test_ablation_hyperplane(self):
        result = ablation_hyperplane_order(50)
        got = {
            family: [list(r.baseline), list(r.variant)]
            for family, r in result.items()
        }
        assert got == GOLDEN["ablation_hyperplane"]

    def test_figure8(self):
        mappers = DEFAULT_MAPPERS()
        mappers.pop("graphmap", None)
        mappers.pop("random", None)
        reductions = figure8_reductions(
            "nearest_neighbor", mappers=mappers, instances=instance_set()[::12]
        )
        got = {
            mapper: {
                "jsum": [float(v) for v in series["jsum"]],
                "jmax": [float(v) for v in series["jmax"]],
            }
            for mapper, series in reductions.items()
        }
        # NaN != NaN: compare with explicit NaN handling
        assert set(got) == set(GOLDEN["figure8"])
        for mapper in got:
            for key in ("jsum", "jmax"):
                for a, b in zip(got[mapper][key], GOLDEN["figure8"][mapper][key]):
                    assert (
                        a == b
                        or (math.isnan(a) and (b is None or math.isnan(b)))
                    ), (mapper, key, a, b)


class TestInlineEquivalence:
    """Sampling paths re-derived with the pre-redesign loop, in-process."""

    def test_measure_times_matches_predesign_loop(self, context50):
        machine = resolve_machine("VSC4")
        family = "nearest_neighbor"
        sizes = (128, 32768)
        reps, seed = 20, 0
        new = measure_times(
            context50, machine, family, sizes, repetitions=reps, seed=seed
        )
        # the pre-redesign loop, verbatim
        model = machine.model(context50.num_nodes, topology_aware=False)
        edges = context50.edges(family)
        stencil = context50.stencil(family)
        expected = {}
        for mapper_name in context50.mapper_names():
            perm = context50.mapping(family, mapper_name)
            per_size = {}
            for size in sizes:
                if perm is None:
                    per_size[size] = None
                    continue
                rng = np.random.default_rng(
                    abs(hash((seed, machine.name, family, mapper_name, size)))
                    % 2**32
                )
                samples = model.sample_times(
                    context50.grid,
                    stencil,
                    perm,
                    context50.alloc,
                    size,
                    repetitions=reps,
                    rng=rng,
                    edges=edges,
                )
                per_size[size] = mean_ci(samples)
            expected[mapper_name] = per_size
        assert new == expected

    def test_appendix_table_matches_predesign_loop(self, context50):
        sizes = (64, 1024)
        table = appendix_table(
            "VSC4", 50, context=context50, message_sizes=sizes, repetitions=10
        )
        for family in table.times:
            expected = measure_times(
                context50, "VSC4", family, sizes, repetitions=10, seed=0
            )
            assert table.times[family] == expected

    def test_measure_times_rejects_deserialized_mappings(self, context50):
        from repro.sweep import ResultSet
        from repro.experiments.throughput import mapping_results

        live = mapping_results(context50, ["nearest_neighbor"])
        dead = ResultSet.from_json(live.to_json())
        with pytest.raises(ValueError, match="no live"):
            measure_times(
                context50, "VSC4", "nearest_neighbor", (128,),
                repetitions=2, mappings=dead,
            )

    def test_figure9_structure(self):
        context = EvaluationContext(4, 4, 2)
        mappers = DEFAULT_MAPPERS()
        mappers.pop("graphmap")  # keep the timing loop fast
        timings = figure9_instantiation_times(
            context=context, mappers=mappers, repetitions=2, slow_repetitions=1
        )
        assert set(timings) == set(mappers)
        for name, timing in timings.items():
            assert timing.mapper == name
            assert timing.full.value >= 0
            assert timing.distributed == mappers[name].distributed
            assert (timing.per_rank is not None) == timing.distributed
