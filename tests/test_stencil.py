"""Unit tests for stencil neighbourhoods (Figure 2 definitions)."""

import math

import pytest

from repro import (
    InvalidStencilError,
    Stencil,
    component,
    moore,
    nearest_neighbor,
    nearest_neighbor_with_hops,
)


class TestFactories:
    def test_nearest_neighbor_2d(self):
        s = nearest_neighbor(2)
        assert s.k == 4
        assert set(s.offsets) == {(1, 0), (-1, 0), (0, 1), (0, -1)}

    def test_nearest_neighbor_3d(self):
        s = nearest_neighbor(3)
        assert s.k == 6
        assert all(sum(abs(c) for c in off) == 1 for off in s.offsets)

    def test_component_2d_is_one_dimensional(self):
        s = component(2)
        assert set(s.offsets) == {(1, 0), (-1, 0)}

    def test_component_3d_excludes_last_dimension(self):
        s = component(3)
        assert s.k == 4
        assert all(off[2] == 0 for off in s.offsets)

    def test_component_needs_two_dimensions(self):
        with pytest.raises(InvalidStencilError):
            component(1)

    def test_hops_default_matches_paper(self):
        s = nearest_neighbor_with_hops(2)
        assert s.k == 8
        assert (2, 0) in s.offsets and (-3, 0) in s.offsets

    def test_hops_custom_distances(self):
        s = nearest_neighbor_with_hops(2, hops=(5,))
        assert (5, 0) in s.offsets and (-5, 0) in s.offsets
        assert s.k == 6

    def test_hops_rejects_distance_one(self):
        # distance 1 would duplicate the nearest-neighbour offsets
        with pytest.raises(InvalidStencilError):
            nearest_neighbor_with_hops(2, hops=(1,))

    def test_moore_counts(self):
        assert moore(2).k == 8
        assert moore(3).k == 26
        assert moore(2, radius=2).k == 24

    def test_moore_invalid(self):
        with pytest.raises(InvalidStencilError):
            moore(0)
        with pytest.raises(InvalidStencilError):
            moore(2, radius=0)

    def test_factory_dim_validation(self):
        with pytest.raises(InvalidStencilError):
            nearest_neighbor(0)


class TestValidation:
    def test_zero_offset_rejected(self):
        with pytest.raises(InvalidStencilError):
            Stencil([(0, 0)])

    def test_duplicate_offset_rejected(self):
        with pytest.raises(InvalidStencilError):
            Stencil([(1, 0), (1, 0)])

    def test_mixed_lengths_rejected(self):
        with pytest.raises(InvalidStencilError):
            Stencil([(1, 0), (1,)])

    def test_empty_rejected(self):
        with pytest.raises(InvalidStencilError):
            Stencil([])

    def test_equality_is_set_based(self):
        a = Stencil([(1, 0), (-1, 0)])
        b = Stencil([(-1, 0), (1, 0)])
        assert a == b
        assert hash(a) == hash(b)


class TestStructuralQueries:
    def test_symmetry(self):
        assert nearest_neighbor(2).is_symmetric()
        assert nearest_neighbor_with_hops(3).is_symmetric()
        assert not Stencil([(1, 0)]).is_symmetric()

    def test_communication_counts_nn(self):
        assert nearest_neighbor(2).communication_counts() == (2, 2)

    def test_communication_counts_component(self):
        # component stencil never crosses the last dimension: f = (2, 0)
        assert component(2).communication_counts() == (2, 0)

    def test_communication_counts_hops(self):
        # 2 NN + 4 hop offsets cross dimension 0
        assert nearest_neighbor_with_hops(2).communication_counts() == (6, 2)

    def test_extensions(self):
        assert nearest_neighbor(2).extensions() == (2, 2)
        assert nearest_neighbor_with_hops(2).extensions() == (6, 2)
        assert component(2).extensions() == (2, 0)

    def test_bounding_volume_treats_zero_extent_as_one(self):
        assert component(2).bounding_volume() == 2
        assert nearest_neighbor(2).bounding_volume() == 4
        assert nearest_neighbor_with_hops(2).bounding_volume() == 12

    def test_distortion_factors_nn_are_uniform(self):
        alphas = nearest_neighbor(2).distortion_factors()
        assert alphas == pytest.approx((1.0, 1.0))

    def test_distortion_factors_hops_elongated(self):
        alphas = nearest_neighbor_with_hops(2).distortion_factors()
        assert alphas[0] == pytest.approx(6 / math.sqrt(12))
        assert alphas[1] == pytest.approx(2 / math.sqrt(12))

    def test_distortion_factor_zero_for_silent_dimension(self):
        assert component(2).distortion_factors()[1] == 0.0

    def test_alignment_scores_nn(self):
        # each +-1_i contributes cos^2 = 1 to its own dimension
        assert nearest_neighbor(2).alignment_scores() == pytest.approx((2.0, 2.0))

    def test_alignment_scores_diagonal(self):
        s = Stencil([(1, 1)])
        assert s.alignment_scores() == pytest.approx((0.5, 0.5))

    def test_alignment_scores_hops_prefer_cutting_dim1(self):
        scores = nearest_neighbor_with_hops(2).alignment_scores()
        # dimension 0 carries six aligned offsets: far higher score
        assert scores[0] > scores[1]


class TestFlattened:
    def test_round_trip(self):
        s = nearest_neighbor_with_hops(2)
        rebuilt = Stencil.from_flattened(s.flattened(), 2)
        assert rebuilt == s

    def test_from_flattened_listing1_example(self):
        s = Stencil.from_flattened([1, 0, -1, 0], 2)
        assert set(s.offsets) == {(1, 0), (-1, 0)}

    def test_from_flattened_length_check(self):
        with pytest.raises(InvalidStencilError):
            Stencil.from_flattened([1, 0, 1], 2)

    def test_from_flattened_bad_ndims(self):
        with pytest.raises(InvalidStencilError):
            Stencil.from_flattened([1, 0], 0)

    def test_iteration_and_len(self):
        s = nearest_neighbor(2)
        assert len(s) == 4
        assert list(s) == list(s.offsets)

    def test_array_is_readonly(self):
        arr = nearest_neighbor(2).as_array()
        with pytest.raises(ValueError):
            arr[0, 0] = 5
