"""The distributed (socket-cluster) backend, over localhost sockets.

Covers the acceptance criteria of the cluster tier: byte-identical
costs to the serial engine with real worker subprocesses, shard requeue
when a worker dies mid-shard (abrupt disconnect, ``SIGKILL``, and the
silent-worker heartbeat timeout), stale-protocol rejection at
handshake, and the ``serve``/``work`` CLI pair.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro import (
    CartesianGrid,
    ClusterBackend,
    ClusterError,
    EvaluationEngine,
    MappingRequest,
    NodeAllocation,
    nearest_neighbor,
    resolve_backend,
)
from repro.engine import Backend
from repro.engine.cluster import parse_address
from repro.engine.cluster.protocol import (
    FAIL,
    GET,
    HELLO,
    MAGIC,
    PROTOCOL_VERSION,
    REJECT,
    SHARD,
    WELCOME,
    ProtocolError,
    encode_message,
    hello,
    recv_message,
    send_message,
)
from repro.engine.cluster.worker import run_worker

from .test_backends import _requests, _signature

#: src/ directory of this checkout, for worker subprocess PYTHONPATH.
_SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def _worker_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_worker(port: int, *extra: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.engine.cluster.worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--backend",
            "serial",
            "--connect-timeout",
            "30",
            *extra,
        ],
        env=_worker_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class _FakeWorker:
    """A hand-driven protocol client for exercising failure paths."""

    def __init__(self, port: int):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=30)

    def handshake(self) -> tuple:
        send_message(self.sock, hello({"fake": True}))
        reply = recv_message(self.sock)
        assert reply is not None and reply[0] == WELCOME
        return reply

    def pull_shard(self) -> tuple:
        """Request work and block until a shard arrives."""
        send_message(self.sock, (GET,))
        message = recv_message(self.sock)
        assert message is not None and message[0] == SHARD
        return message

    def close(self) -> None:
        self.sock.close()


@pytest.fixture(scope="module")
def serial_results():
    return EvaluationEngine(max_workers=1).evaluate_batch(_requests())


@pytest.fixture
def backend():
    cluster = ClusterBackend("127.0.0.1", 0, heartbeat_timeout=6.0)
    try:
        yield cluster
    finally:
        cluster.close()


class TestClusterBackend:
    def test_satisfies_protocol(self, backend):
        assert isinstance(backend, Backend)

    def test_batch_byte_identical_to_serial(self, backend, serial_results):
        workers = [_spawn_worker(backend.port) for _ in range(2)]
        try:
            backend.wait_for_workers(2, timeout=60)
            results = backend.evaluate_batch(_requests())
        finally:
            backend.close()
        assert list(map(_signature, results)) == list(
            map(_signature, serial_results)
        )
        assert [w.wait(timeout=30) for w in workers] == [0, 0]

    def test_stream_byte_identical_to_serial(self, backend, serial_results):
        worker = _spawn_worker(backend.port)
        try:
            streamed = list(backend.evaluate_stream(_requests()))
        finally:
            backend.close()
        assert sorted(map(_signature, streamed)) == sorted(
            map(_signature, serial_results)
        )
        assert worker.wait(timeout=30) == 0

    def test_results_keep_original_requests_and_tags(self, backend):
        marker = object()  # unpicklable payloads must never cross the wire
        requests = _requests(tagger=lambda i, name: (i, name, marker))
        worker = _spawn_worker(backend.port)
        try:
            results = backend.evaluate_batch(requests)
        finally:
            backend.close()
        assert all(r.request is req for r, req in zip(results, requests))
        assert all(r.request.tag[2] is marker for r in results)
        assert worker.wait(timeout=30) == 0

    def test_result_buffers_are_read_only(self, backend):
        worker = _spawn_worker(backend.port)
        try:
            (result,) = backend.evaluate_batch(_requests()[:1])
        finally:
            backend.close()
        for arr in (result.perm, result.cost.per_node):
            with pytest.raises(ValueError):
                arr[0] = -1
        worker.wait(timeout=30)

    def test_empty_batch(self, backend):
        assert backend.evaluate_batch([]) == []

    def test_weighted_metric_byte_identical_to_serial(self, backend):
        """Batch-level metrics travel the wire and match the serial path."""
        from .test_backends import _weighted_requests

        with EvaluationEngine(max_workers=1) as engine:
            serial = engine.evaluate_batch(_weighted_requests())
        worker = _spawn_worker(backend.port)
        try:
            results = backend.evaluate_batch(_weighted_requests())
        finally:
            backend.close()
        assert list(map(_signature, results)) == list(map(_signature, serial))
        assert any(r.metrics for r in results)
        assert worker.wait(timeout=30) == 0

    def test_wait_for_workers_timeout(self, backend):
        with pytest.raises(ClusterError, match="timed out"):
            backend.wait_for_workers(1, timeout=0.2)


class TestWorkerFailure:
    def test_disconnect_mid_shard_requeues(self, serial_results):
        """A worker that takes a shard and dies loses only throughput:
        the shard is requeued and another worker completes the sweep."""
        with ClusterBackend("127.0.0.1", 0, heartbeat_timeout=6.0) as backend:
            saboteur = _FakeWorker(backend.port)
            saboteur.handshake()
            send_message(saboteur.sock, (GET,))  # parked: first in line

            box: dict = {}

            def sweep():
                box["results"] = backend.evaluate_batch(_requests())

            runner = threading.Thread(target=sweep)
            runner.start()
            # The parked GET is served as soon as shards are queued.
            message = recv_message(saboteur.sock)
            assert message[0] == SHARD
            saboteur.close()  # dies holding the shard

            survivor = _spawn_worker(backend.port)
            runner.join(timeout=120)
            assert not runner.is_alive()
        assert list(map(_signature, box["results"])) == list(
            map(_signature, serial_results)
        )
        assert survivor.wait(timeout=30) == 0

    def test_sigkill_mid_sweep_completes(self):
        """Acceptance: kill -9 one of two real workers mid-sweep; the
        sweep still completes with byte-identical costs."""
        stencil = nearest_neighbor(2)
        requests = []
        for nodes in (8, 10, 12, 15, 18, 20):
            grid = CartesianGrid([nodes, 24])
            alloc = NodeAllocation.homogeneous(nodes, 24)
            for name in ("blocked", "hyperplane", "kd_tree", "stencil_strips"):
                requests.append(
                    MappingRequest(grid, stencil, alloc, name, tag=(nodes, name))
                )
        serial = EvaluationEngine(max_workers=1).evaluate_batch(requests)

        with ClusterBackend("127.0.0.1", 0, heartbeat_timeout=6.0) as backend:
            victim = _spawn_worker(backend.port)
            survivor = _spawn_worker(backend.port)
            backend.wait_for_workers(2, timeout=60)
            streamed = []
            stream = backend.evaluate_stream(requests)
            streamed.append(next(stream))
            victim.send_signal(signal.SIGKILL)
            streamed.extend(stream)
        assert sorted(map(_signature, streamed)) == sorted(
            map(_signature, serial)
        )
        victim.wait(timeout=30)
        assert survivor.wait(timeout=30) == 0

    def test_heartbeat_timeout_reaps_silent_worker(self, serial_results):
        """A connected-but-silent worker is reaped after the heartbeat
        timeout and its shard is requeued, instead of hanging the sweep."""
        with ClusterBackend("127.0.0.1", 0, heartbeat_timeout=1.5) as backend:
            mute = _FakeWorker(backend.port)
            mute.handshake()
            send_message(mute.sock, (GET,))

            box: dict = {}

            def sweep():
                box["results"] = backend.evaluate_batch(_requests())

            runner = threading.Thread(target=sweep)
            runner.start()
            message = recv_message(mute.sock)
            assert message[0] == SHARD
            # ... and now say nothing: no result, no pings.
            survivor = _spawn_worker(backend.port)
            runner.join(timeout=120)
            assert not runner.is_alive()
            # the coordinator closed the mute connection
            assert recv_message(mute.sock) is None
            mute.close()
        assert list(map(_signature, box["results"])) == list(
            map(_signature, serial_results)
        )
        assert survivor.wait(timeout=30) == 0

    def test_repeated_worker_deaths_fail_the_shard(self):
        """A shard that keeps killing its workers (OOM-style death, no
        FAIL message) must not cycle through the cluster forever: after
        max_shard_requeues worker deaths the sweep fails."""
        with ClusterBackend(
            "127.0.0.1", 0, heartbeat_timeout=6.0, max_shard_requeues=1
        ) as backend:
            first = _FakeWorker(backend.port)
            first.handshake()
            send_message(first.sock, (GET,))

            box: dict = {}

            def sweep():
                try:
                    backend.evaluate_batch(_requests())
                except ClusterError as exc:
                    box["error"] = str(exc)

            runner = threading.Thread(target=sweep)
            runner.start()
            assert recv_message(first.sock)[0] == SHARD
            first.close()  # death #1: requeued (1 <= max_shard_requeues)

            second = _FakeWorker(backend.port)
            second.handshake()
            send_message(second.sock, (GET,))
            assert recv_message(second.sock)[0] == SHARD  # the requeued shard
            second.close()  # death #2: over the cap -> poisoned

            runner.join(timeout=60)
            assert not runner.is_alive()
        assert "poisoned" in box["error"]

    def test_explicitly_empty_cache_dir_is_not_overridden(self, tmp_path):
        """REPRO_CACHE_DIR= (explicitly empty) disables the worker's
        disk layer even when the coordinator advertises a directory."""
        advertised = tmp_path / "advertised"
        with ClusterBackend(
            "127.0.0.1", 0, heartbeat_timeout=6.0, disk_cache_dir=advertised
        ) as backend:
            env = _worker_env()
            env["REPRO_CACHE_DIR"] = ""
            worker = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.engine.cluster.worker",
                    "--connect",
                    f"127.0.0.1:{backend.port}",
                    "--backend",
                    "serial",
                    "--connect-timeout",
                    "30",
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            results = backend.evaluate_batch(_requests())
        assert all(r.ok or r.error for r in results)
        assert not list(advertised.glob("edges-*.npy"))  # disk layer stayed off
        assert worker.wait(timeout=30) == 0

    def test_poisoned_shard_fails_the_sweep(self, backend):
        """A worker-reported crash (FAIL) must fail the sweep rather
        than requeue a deterministically crashing shard forever."""

        def sabotage():
            fake = _FakeWorker(backend.port)
            fake.handshake()
            message = fake.pull_shard()
            send_message(fake.sock, (FAIL, message[1], "synthetic engine crash"))
            fake.close()

        saboteur = threading.Thread(target=sabotage)
        saboteur.start()
        with pytest.raises(ClusterError, match="synthetic engine crash"):
            backend.evaluate_batch(_requests())
        saboteur.join(timeout=30)


class TestHandshake:
    def test_stale_protocol_version_refused(self, backend):
        with socket.create_connection(("127.0.0.1", backend.port), timeout=30) as sock:
            send_message(sock, (HELLO, MAGIC, PROTOCOL_VERSION + 1, {}))
            reply = recv_message(sock)
        assert reply[0] == REJECT
        assert "protocol version" in reply[1]
        # the coordinator survives and still welcomes a current worker
        fresh = _FakeWorker(backend.port)
        assert fresh.handshake()[0] == WELCOME
        fresh.close()

    def test_wrong_magic_refused(self, backend):
        with socket.create_connection(("127.0.0.1", backend.port), timeout=30) as sock:
            send_message(sock, (HELLO, "other-protocol", PROTOCOL_VERSION, {}))
            reply = recv_message(sock)
        assert reply[0] == REJECT
        assert "magic" in reply[1]

    def test_non_hello_refused(self, backend):
        with socket.create_connection(("127.0.0.1", backend.port), timeout=30) as sock:
            send_message(sock, (GET,))
            reply = recv_message(sock)
        assert reply[0] == REJECT

    def test_welcome_advertises_cache_dir(self, tmp_path):
        with ClusterBackend(
            "127.0.0.1", 0, disk_cache_dir=tmp_path
        ) as backend:
            fake = _FakeWorker(backend.port)
            welcome = fake.handshake()
            fake.close()
        assert welcome[1]["cache_dir"] == str(tmp_path)
        assert welcome[1]["heartbeat_interval"] > 0

    def test_rejected_worker_exits_with_code_2(self):
        """The worker entrypoint surfaces a handshake REJECT as exit 2."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def refuse():
            conn, _ = listener.accept()
            recv_message(conn)
            send_message(conn, (REJECT, "stale protocol (synthetic)"))
            conn.close()

        refuser = threading.Thread(target=refuse)
        refuser.start()
        logged: list[str] = []
        code = run_worker(f"127.0.0.1:{port}", log=logged.append)
        refuser.join(timeout=30)
        listener.close()
        assert code == 2
        assert any("stale protocol" in line for line in logged)

    def test_unreachable_coordinator_exits_with_code_1(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        free_port = sock.getsockname()[1]
        sock.close()  # nothing listens here any more
        code = run_worker(
            f"127.0.0.1:{free_port}", connect_timeout=0.3, log=lambda *_: None
        )
        assert code == 1


class TestProtocol:
    def test_frame_roundtrip(self):
        import pickle
        import struct

        frame = encode_message((SHARD, 7, ["payload"]))
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert pickle.loads(frame[4:]) == (SHARD, 7, ["payload"])

    def test_mid_frame_eof_raises(self):
        a, b = socket.socketpair()
        with a, b:
            frame = encode_message((GET,))
            a.sendall(frame[: len(frame) - 1])
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame|payload"):
                recv_message(b)

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        with a, b:
            a.close()
            assert recv_message(b) is None

    def test_parse_address(self):
        assert parse_address("7077") == ("", 7077)
        assert parse_address(":7077") == ("", 7077)
        assert parse_address("node1:7077") == ("node1", 7077)
        assert parse_address("8000", default_host="127.0.0.1") == (
            "127.0.0.1",
            8000,
        )
        with pytest.raises(ValueError):
            parse_address("host:notaport")
        with pytest.raises(ValueError):
            parse_address("host:70777")


class TestResolveClusterSpec:
    def test_spec_binds_a_coordinator(self):
        backend = resolve_backend("cluster:127.0.0.1:0")
        try:
            assert isinstance(backend, ClusterBackend)
            assert backend.port != 0  # ephemeral port was resolved
        finally:
            backend.close()

    def test_invalid_specs(self):
        with pytest.raises(ValueError, match="cluster"):
            resolve_backend("cluster:nota:port")
        with pytest.raises(ValueError, match="shards"):
            resolve_backend("cluster:127.0.0.1:0", shards=4)

    def test_worker_refuses_cluster_backend(self):
        with pytest.raises(ValueError, match="cannot itself"):
            run_worker("127.0.0.1:1", backend_spec="cluster:0")

    def test_worker_validates_spec_before_connecting(self, backend):
        """A typo'd local spec must fail before the worker handshakes
        (and would otherwise satisfy a serve --min-workers quorum)."""
        with pytest.raises(ValueError, match="unknown backend spec"):
            run_worker(
                f"127.0.0.1:{backend.port}",
                backend_spec="proces:8",
                log=lambda *_: None,
            )
        assert backend.num_workers == 0  # it never even connected


class TestClusterCLI:
    def test_serve_and_work_roundtrip(self, capsys):
        """The documented two-command quickstart, on one machine."""
        from repro.experiments.__main__ import main as experiments_main

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        worker = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "work",
                "--connect",
                f"127.0.0.1:{port}",
                "--connect-timeout",
                "60",
                "--backend",
                "serial",
            ],
            env=_worker_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        code = 1
        try:
            code = experiments_main(
                [
                    "serve",
                    "figure8",
                    "--bind",
                    f"127.0.0.1:{port}",
                    "--fast",
                    "--min-workers",
                    "1",
                ]
            )
        finally:
            if worker.poll() is None and code != 0:  # pragma: no cover
                worker.kill()
        assert code == 0
        out = capsys.readouterr().out
        assert "coordinator listening" in out
        assert "Figure 8" in out
        assert worker.wait(timeout=30) == 0

    def test_work_requires_connect(self):
        from repro.experiments.__main__ import main as experiments_main

        with pytest.raises(SystemExit):
            experiments_main(["work"])

    def test_serve_rejects_unknown_sweep(self):
        from repro.experiments.__main__ import main as experiments_main

        with pytest.raises(SystemExit):
            experiments_main(["serve", "figure6"])

    def test_cli_rejects_bad_cluster_spec(self):
        from repro.experiments.__main__ import main as experiments_main

        with pytest.raises(SystemExit):
            experiments_main(["figure8", "--fast", "--backend", "cluster:nope"])
