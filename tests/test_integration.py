"""Integration tests: full stencil applications on the simulated stack."""

import numpy as np
import pytest

import repro
from repro.mpisim import SimMPI, cart_stencil_comm, dist_graph_from_cart


def sequential_jacobi(field: np.ndarray, iterations: int) -> np.ndarray:
    f = field.copy()
    for _ in range(iterations):
        nxt = f.copy()
        nxt[1:-1, 1:-1] = 0.25 * (
            f[:-2, 1:-1] + f[2:, 1:-1] + f[1:-1, :-2] + f[1:-1, 2:]
        )
        f = nxt
    return f


def run_distributed_jacobi(mapper, tile=8, iterations=6, nodes=4, cores=6):
    """Tiled Jacobi identical to examples/jacobi_heat_equation.py."""
    job = SimMPI(repro.vsc4(), num_nodes=nodes, processes_per_node=cores)
    dims = repro.dims_create(job.allocation.total_processes, 2)
    stencil = repro.nearest_neighbor(2)
    cart = cart_stencil_comm(job, dims, stencil, mapper=mapper,
                             reorder=mapper is not None)
    rows, cols = dims[0] * tile, dims[1] * tile
    rng = np.random.default_rng(7)
    initial = rng.random((rows, cols))
    initial[0, :] = initial[-1, :] = initial[:, 0] = initial[:, -1] = 0.0

    tiles = {
        r: initial[
            cart.coords(r)[0] * tile : (cart.coords(r)[0] + 1) * tile,
            cart.coords(r)[1] * tile : (cart.coords(r)[1] + 1) * tile,
        ].copy()
        for r in range(cart.size)
    }
    for _ in range(iterations):
        send = np.zeros((cart.size, 4, tile))
        for r, t in tiles.items():
            send[r, 0], send[r, 1] = t[-1, :], t[0, :]
            send[r, 2], send[r, 3] = t[:, -1], t[:, 0]
        res = cart.neighbor_alltoall(send)
        for r, t in tiles.items():
            halo = np.zeros((tile + 2, tile + 2))
            halo[1:-1, 1:-1] = t
            if res.valid[r, 0]:
                halo[0, 1:-1] = res.data[r, 0]
            if res.valid[r, 1]:
                halo[-1, 1:-1] = res.data[r, 1]
            if res.valid[r, 2]:
                halo[1:-1, 0] = res.data[r, 2]
            if res.valid[r, 3]:
                halo[1:-1, -1] = res.data[r, 3]
            new = 0.25 * (
                halo[:-2, 1:-1] + halo[2:, 1:-1] + halo[1:-1, :-2] + halo[1:-1, 2:]
            )
            i, j = cart.coords(r)
            if i == 0:
                new[0, :] = t[0, :]
            if i == dims[0] - 1:
                new[-1, :] = t[-1, :]
            if j == 0:
                new[:, 0] = t[:, 0]
            if j == dims[1] - 1:
                new[:, -1] = t[:, -1]
            tiles[r] = new

    out = np.zeros_like(initial)
    for r, t in tiles.items():
        i, j = cart.coords(r)
        out[i * tile : (i + 1) * tile, j * tile : (j + 1) * tile] = t
    return out, sequential_jacobi(initial, iterations), job.clock


@pytest.mark.parametrize(
    "mapper",
    [None, repro.HyperplaneMapper(), repro.KDTreeMapper(), repro.StencilStripsMapper()],
    ids=["blocked", "hyperplane", "kd_tree", "stencil_strips"],
)
def test_jacobi_matches_sequential(mapper):
    """The distributed solution is bit-identical under every mapping."""
    distributed, reference, clock = run_distributed_jacobi(mapper)
    assert np.array_equal(distributed, reference)
    assert clock > 0


def test_reordering_is_transparent_and_faster():
    """Same numerics, less simulated communication time."""
    d_blocked, ref, t_blocked = run_distributed_jacobi(None, nodes=16, cores=12)
    d_mapped, _, t_mapped = run_distributed_jacobi(
        repro.StencilStripsMapper(), nodes=16, cores=12
    )
    assert np.array_equal(d_blocked, d_mapped)
    assert t_mapped < t_blocked


def test_hops_stencil_exchange_on_dist_graph():
    """End-to-end: Listing 1 stencil -> dist graph -> data exchange."""
    job = SimMPI(repro.juwels(), num_nodes=4, processes_per_node=8)
    dims = repro.dims_create(32, 2)
    flat = [1, 0, -1, 0, 0, 1, 0, -1, 2, 0, -2, 0]
    cart = cart_stencil_comm(job, dims, flat, mapper=repro.HyperplaneMapper())
    dg = dist_graph_from_cart(cart)
    send = [
        [np.full(4, float(u)) for _ in range(dg.outdegree(u))]
        for u in range(dg.size)
    ]
    recv, elapsed = dg.neighbor_alltoall(send)
    assert elapsed > 0
    for u in range(dg.size):
        for j, src in enumerate(dg.sources_of(u)):
            assert recv[u][j][0] == float(src)


def test_allreduce_convergence_loop():
    """A residual-driven loop using allreduce on the simulated world."""
    job = SimMPI(repro.vsc4(), num_nodes=2, processes_per_node=4)
    residuals = np.array([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
    global_max = job.world.allreduce(residuals, "max")
    assert float(global_max) == 9.0
    assert job.clock > 0
