"""Portfolio search (racing) and the METRICS observability surface.

Covers the `repro.search` subsystem — rung schedules, racing
determinism, early cancellation, audit trails, budgets — plus the v6
METRICS round-trip (queue age, per-job progress/ETA, store gauges) and
the `watch`/`search` CLI verbs.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro import (
    InstanceSpec,
    SearchError,
    SearchSpec,
    ServiceClient,
    ServiceDaemon,
    run,
    run_search,
)
from repro.engine import EvaluationEngine

from .test_service import _FakeServiceWorker

CANDIDATES = ("blocked", "hyperplane", "kd_tree", "random")


def _spec(nodes=(4, 8, 16, 27), candidates=CANDIDATES, **kwargs):
    return SearchSpec(
        [InstanceSpec.from_nodes(n, 8) for n in nodes],
        candidates=candidates,
        **kwargs,
    )


class _SlowBackend:
    """A shared, thread-safe backend that paces every evaluation.

    Slowing each cell down keeps losers mid-stream when the rankings
    land, so early cancellation measurably saves cells.
    """

    def __init__(self, delay: float = 0.01):
        self.delay = delay

    def evaluate_batch(self, requests):
        return list(self.evaluate_stream(requests))

    def evaluate_stream(self, requests):
        with EvaluationEngine(max_workers=1) as engine:
            for request in requests:
                time.sleep(self.delay)
                yield engine.evaluate_batch([request])[0]

    def close(self):
        pass


# ----------------------------------------------------------------------
# Spec shapes and validation
# ----------------------------------------------------------------------
class TestSearchSpec:
    def test_rung_schedule_doubles_to_the_full_set(self):
        assert _spec(nodes=(4, 8, 16, 27, 32, 45, 64, 81)).rungs() == (
            1,
            2,
            4,
            8,
        )

    def test_rung_schedule_clamps_the_last_rung(self):
        assert _spec(nodes=(4, 8, 16, 27, 32)).rungs() == (1, 2, 4, 5)

    def test_single_instance_is_one_rung(self):
        assert _spec(nodes=(4,)).rungs() == (1,)

    def test_min_instances_starts_deeper(self):
        assert _spec(
            nodes=(4, 8, 16, 27, 32), min_instances=2
        ).rungs() == (2, 4, 5)

    def test_exhaustive_cell_count(self):
        spec = _spec()
        assert spec.exhaustive_cells == 4 * len(CANDIDATES)
        assert spec.cells_per_instance == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="eta"):
            _spec(eta=1)
        with pytest.raises(ValueError, match="min_instances"):
            _spec(min_instances=0)
        with pytest.raises(ValueError, match="budget_seconds"):
            _spec(budget_seconds=0)
        with pytest.raises(ValueError, match="max_cells"):
            _spec(max_cells=0)
        with pytest.raises(ValueError, match="objective"):
            _spec(objective="")


# ----------------------------------------------------------------------
# The racing driver (local backends)
# ----------------------------------------------------------------------
class TestRacing:
    def test_same_seed_same_winner_and_audit(self):
        """Racing decisions are deterministic: same seed, same winner,
        same eliminations (cells_evaluated is the one timing-dependent
        audit field)."""

        def decisions(result):
            return [
                {
                    k: v
                    for k, v in audit.to_record().items()
                    if k != "cells_evaluated"
                }
                for audit in result.candidates
            ]

        first = run_search(_spec(seed=3))
        second = run_search(_spec(seed=3))
        assert first.winner == second.winner
        assert first.instance_order == second.instance_order
        assert first.rungs == second.rungs
        assert decisions(first) == decisions(second)

    def test_seed_shuffles_the_instance_order(self):
        orders = {
            run_search(_spec(seed=seed)).instance_order for seed in range(4)
        }
        assert len(orders) > 1

    def test_winner_matches_exhaustive_argmin_byte_identical(self):
        """Acceptance: the search returns the same best mapper as the
        exhaustive sweep, and the winner's rows are byte-identical to
        that mapper's slice of the exhaustive ResultSet."""
        spec = _spec()
        result = run_search(spec)
        exhaustive = run(spec.base)
        totals = {
            mapper: sum(
                row.jsum for row in rows if row.ok and row.jsum is not None
            )
            for mapper, rows in exhaustive.ok().group_by("mapper").items()
        }
        assert result.winner == min(totals, key=totals.get)
        assert (
            result.winner_rows.to_json()
            == exhaustive.filter(mapper=result.winner).to_json()
        )
        assert result.complete
        assert result.best_row is not None

    def test_topology_hop_cut_as_objective(self):
        """The hop-weighted cut drives candidate selection end to end:
        the winner is the exhaustive argmin of the ``hop_cut`` column."""
        import repro

        metric = repro.topology_cut_metric(repro.Torus3DTopology((3, 3, 3)))
        spec = _spec(
            nodes=(4, 8, 16, 27),
            metrics=[metric],
            objective="hop_cut",
        )
        result = run_search(spec)
        assert result.complete
        exhaustive = run(spec.base)
        totals = {
            mapper: sum(row.metrics["hop_cut"] for row in rows if row.ok)
            for mapper, rows in exhaustive.ok().group_by("mapper").items()
        }
        assert result.winner == min(totals, key=totals.get)

    def test_early_cancel_evaluates_fewer_cells_than_exhaustive(self):
        spec = _spec(nodes=(4, 8, 12, 16, 20, 27, 32, 45))
        result = run_search(spec, backend=_SlowBackend())
        assert result.complete
        assert result.cells_evaluated < result.exhaustive_cells
        # the winner still evaluated everything; some loser was cut short
        assert result.audit(result.winner).cells_evaluated == 8

    def test_dominated_candidates_carry_a_full_audit_trail(self):
        result = run_search(_spec())
        statuses = {audit.name: audit.status for audit in result.candidates}
        assert statuses[result.winner] == "winner"
        eliminated = [
            audit
            for audit in result.candidates
            if audit.status == "eliminated"
        ]
        assert eliminated  # halving must have killed someone
        for audit in eliminated:
            assert "dominated at rung" in audit.reason
            assert "vs leader" in audit.reason
            assert audit.rung_reached in audit.scores
            assert audit.instances_scored >= 1
        # every candidate is accounted for, winner first in the records
        assert {a.name for a in result.candidates} == set(CANDIDATES)
        assert result.to_records()[0]["status"] == "winner"

    def test_failed_candidate_is_eliminated_and_race_continues(self):
        result = run_search(
            _spec(candidates=("blocked", "hyperplane", "no_such_mapper"))
        )
        audit = result.audit("no_such_mapper")
        assert audit.status == "error"
        assert "no_such_mapper" in audit.reason
        assert result.winner in ("blocked", "hyperplane")
        assert result.complete

    def test_every_candidate_failing_raises_search_error(self):
        with pytest.raises(SearchError, match="every candidate failed"):
            run_search(_spec(candidates=("nope_a", "nope_b")))

    def test_cell_budget_cuts_the_race_short(self):
        result = run_search(
            _spec(nodes=(4, 8, 12, 16, 20, 27, 32, 45), max_cells=10),
            backend=_SlowBackend(),
        )
        assert not result.complete
        assert result.winner in CANDIDATES
        # the budget reason lands on the survivors it cut — or on the
        # winner itself when the field had already narrowed to one
        cut = [
            audit
            for audit in result.candidates
            if audit.reason and "cell budget (10) exhausted" in audit.reason
        ]
        assert cut
        assert all(
            audit.status in ("budget", "winner") for audit in cut
        )
        assert result.cells_evaluated < result.exhaustive_cells

    def test_result_json_document(self):
        result = run_search(_spec())
        document = json.loads(result.to_json())
        assert document["schema"] == "repro.search/v1"
        assert document["winner"] == result.winner
        assert document["rungs"] == [1, 2, 4]
        assert len(document["candidates"]) == len(CANDIDATES)
        assert len(document["winner_rows"]) == 4
        assert document["best_row"]["mapper"] == result.winner
        assert document["exhaustive_cells"] == 16


# ----------------------------------------------------------------------
# METRICS: queue age, per-job progress/ETA, store gauges (v6)
# ----------------------------------------------------------------------
class TestMetrics:
    def test_snapshot_shape_and_queue_age_growth(self):
        with ServiceDaemon("127.0.0.1", 0, heartbeat_timeout=30.0) as daemon:
            client = ServiceClient("127.0.0.1", daemon.port)
            handle = client.submit(
                [[("m", i)] for i in range(3)], label="metrics"
            )
            try:
                first = client.metrics()
                assert first["schema"] == "repro.metrics/v1"
                assert first["queue"]["depth"] == 3
                assert first["queue"]["oldest_age"] >= 0.0
                assert first["store"]["enabled"] is False
                for key in ("workers", "busy", "queued_shards",
                            "completed_shards", "worker_early_deaths"):
                    assert key in first["pool"]
                (job,) = [
                    j
                    for j in first["jobs"]
                    if j["job"] == handle.job_id
                ]
                assert job["dispatched"] == 0
                assert job["remaining"] == 3
                assert job["progress"] == 0.0
                assert job["eta"] is None  # no completion yet, no rate
                time.sleep(0.25)
                second = client.metrics()
                assert (
                    second["queue"]["oldest_age"]
                    > first["queue"]["oldest_age"]
                )
                # the daemon surface method serves the same document
                assert daemon.metrics()["queue"]["depth"] == 3
            finally:
                client.cancel(handle.job_id)
                handle.close()

    def test_eta_shrinks_under_a_steadily_completing_worker(self):
        """Hand-driven worker at a steady pace: each completion lowers
        the rate-based ETA."""
        with ServiceDaemon("127.0.0.1", 0, heartbeat_timeout=30.0) as daemon:
            client = ServiceClient("127.0.0.1", daemon.port)
            worker = _FakeServiceWorker(daemon.port)
            handle = client.submit([[("e", i)] for i in range(4)], label="eta")
            try:
                etas = []
                for completed in range(1, 4):
                    message = worker.pull()
                    time.sleep(0.25)
                    worker.finish(message[1], message[2])
                    deadline = time.monotonic() + 10
                    while time.monotonic() < deadline:
                        (job,) = [
                            j
                            for j in client.metrics()["jobs"]
                            if j["job"] == handle.job_id
                        ]
                        if job["completed"] == completed:
                            break
                        time.sleep(0.02)
                    assert job["completed"] == completed
                    assert job["progress"] == pytest.approx(completed / 4)
                    assert job["rate"] > 0
                    etas.append(job["eta"])
                assert all(eta is not None for eta in etas)
                assert etas[0] > etas[1] > etas[2] > 0
                message = worker.pull()
                worker.finish(message[1], message[2])
                assert len(list(handle.results())) == 4
                # a finished job reports ETA 0 from the history record
                (job,) = [
                    j
                    for j in client.metrics()["jobs"]
                    if j["job"] == handle.job_id
                ]
                assert job["state"] == "done"
                assert job["eta"] == 0.0
                assert job["progress"] == 1.0
            finally:
                worker.close()
                handle.close()

    def test_store_counters_and_prune_policy(self, tmp_path):
        with ServiceDaemon(
            "127.0.0.1",
            0,
            heartbeat_timeout=30.0,
            disk_cache_dir=tmp_path,
            store_max_bytes=1 << 20,
            store_ttl=3600.0,
            store_prune_interval=0.1,
        ) as daemon:
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                store = daemon.metrics()["store"]
                if store["prune"]["runs"] > 0:
                    break
                time.sleep(0.05)
            assert store["enabled"] is True
            assert store["prune"]["max_bytes"] == 1 << 20
            assert store["prune"]["ttl"] == 3600.0
            assert store["prune"]["runs"] > 0
            assert store["prune"]["removed_total"] == 0  # nothing to evict
            assert store["hits"] == 0 and store["misses"] == 0

    def test_store_policy_requires_a_cache_dir(self):
        with pytest.raises(ValueError, match="cache"):
            ServiceDaemon("127.0.0.1", 0, store_max_bytes=1 << 20)


# ----------------------------------------------------------------------
# CLI: `watch` and `search`
# ----------------------------------------------------------------------
class TestSearchCLI:
    def test_watch_json_document(self, tmp_path):
        from repro.experiments.__main__ import main as experiments_main

        output = tmp_path / "metrics.json"
        with ServiceDaemon("127.0.0.1", 0, heartbeat_timeout=30.0) as daemon:
            client = ServiceClient("127.0.0.1", daemon.port)
            handle = client.submit([[("w", 0)]], label="watched")
            try:
                assert (
                    experiments_main(
                        [
                            "watch",
                            "--connect",
                            f"127.0.0.1:{daemon.port}",
                            "--format",
                            "json",
                            "--output",
                            str(output),
                        ]
                    )
                    == 0
                )
            finally:
                client.cancel(handle.job_id)
                handle.close()
        document = json.loads(output.read_text())
        assert document["schema"] == "repro.metrics/v1"
        assert "oldest_age" in document["queue"]
        assert any("eta" in job for job in document["jobs"])

    def test_watch_once_renders_a_table(self, capsys):
        from repro.experiments.__main__ import main as experiments_main

        with ServiceDaemon("127.0.0.1", 0, heartbeat_timeout=30.0) as daemon:
            assert (
                experiments_main(
                    ["watch", "--connect", f"127.0.0.1:{daemon.port}", "--once"]
                )
                == 0
            )
        out = capsys.readouterr().out
        assert "queue depth=0" in out
        assert "eta" in out

    def test_search_cli_json_matches_library_run(self, tmp_path):
        from repro.experiments.__main__ import main as experiments_main

        output = tmp_path / "search.json"
        assert (
            experiments_main(
                [
                    "search",
                    "--nodes",
                    "4,8,16,27",
                    "--mappers",
                    ",".join(CANDIDATES),
                    "--seed",
                    "0",
                    "--format",
                    "json",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        document = json.loads(output.read_text())
        assert document["schema"] == "repro.search/v1"
        library = run_search(_spec(seed=0))
        assert document["winner"] == library.winner
        assert document["winner_rows"] == library.winner_rows.to_rows()

    def test_search_cli_rejects_bad_nodes(self, capsys):
        from repro.experiments.__main__ import main as experiments_main

        with pytest.raises(SystemExit):
            experiments_main(["search", "--nodes", "4,banana"])


# ----------------------------------------------------------------------
# The racing driver over the service tier (in-process daemon, real work)
# ----------------------------------------------------------------------
class TestSearchOverService:
    def test_service_backend_race_matches_local(self):
        """One autoscaled in-process daemon; the race over per-candidate
        service jobs crowns the same winner with the same rows as the
        local race (and as the exhaustive sweep, by transitivity)."""
        spec = _spec()
        local = run_search(spec)
        with ServiceDaemon(
            "127.0.0.1",
            0,
            heartbeat_timeout=30.0,
            min_workers=1,
            max_workers=2,
        ) as daemon:
            remote = run_search(
                _spec(), backend=f"service:127.0.0.1:{daemon.port}"
            )
        assert remote.winner == local.winner
        assert remote.winner_rows.to_json() == local.winner_rows.to_json()
        assert remote.complete
