#!/usr/bin/env python3
"""General (non-Cartesian) process mapping with the graph mapper.

The paper compares against VieM because applications are not always
Cartesian: coupled multi-physics codes, irregular meshes, or task graphs
produce arbitrary communication patterns.  ``GraphMapper`` (this
library's VieM stand-in) maps any directed communication graph onto a
node hierarchy.

This example maps three workload families — structured stencil, random
sparse, and clustered/multi-physics — and shows where structure helps
and where only a general mapper applies.

Run:  python examples/general_graph_mapping.py
"""

import numpy as np

import repro
from repro.metrics.cost import node_of_vertex
from repro.workloads import (
    clustered_workload,
    random_sparse_workload,
    stencil_workload,
)


def cut_of(workload, perm, alloc) -> int:
    nodes = node_of_vertex(perm, alloc)
    return int(
        (nodes[workload.edges[:, 0]] != nodes[workload.edges[:, 1]]).sum()
    )


def main() -> None:
    alloc = repro.NodeAllocation.homogeneous(8, 16)
    p = alloc.total_processes
    workloads = [
        stencil_workload(
            repro.CartesianGrid(repro.dims_create(p, 2)),
            repro.nearest_neighbor(2),
        ),
        random_sparse_workload(p, degree=4, seed=1),
        clustered_workload(8, 16, intra_degree=6, inter_links=2, seed=1),
    ]
    mapper = repro.GraphMapper(seed=7, restarts=3)

    print(f"{p} processes on {alloc.num_nodes} nodes x {alloc.node_sizes[0]}\n")
    for w in workloads:
        blocked_cut = cut_of(w, np.arange(p), alloc)
        perm = mapper.map_graph(w.edges, w.num_processes, alloc)
        mapped_cut = cut_of(w, perm, alloc)
        reduction = mapped_cut / blocked_cut if blocked_cut else 1.0
        print(f"{w.name:<34} edges={w.num_edges:>5}  "
              f"blocked cut={blocked_cut:>5}  graphmap cut={mapped_cut:>5}  "
              f"(x{reduction:.2f})")

    # For the Cartesian workload, compare with the specialised algorithms:
    grid = repro.CartesianGrid(repro.dims_create(p, 2))
    stencil = repro.nearest_neighbor(2)
    print("\nCartesian case — specialised algorithms for comparison:")
    for name in ("hyperplane", "stencil_strips"):
        perm = repro.get_mapper(name).map_ranks(grid, stencil, alloc)
        cost = repro.evaluate_mapping(grid, stencil, perm, alloc)
        print(f"  {name:<16} Jsum={cost.jsum}")

    # The clustered workload has a known near-optimal structure: one
    # cluster per node cuts only the coupling links.
    w = workloads[2]
    perm = mapper.map_graph(w.edges, w.num_processes, alloc)
    nodes = node_of_vertex(perm, alloc)
    purity = sum(
        1
        for c in range(8)
        if len(set(nodes[c * 16 : (c + 1) * 16].tolist())) == 1
    )
    print(f"\nclustered workload: {purity}/8 clusters placed on a single node")


if __name__ == "__main__":
    main()
