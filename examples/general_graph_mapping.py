#!/usr/bin/env python3
"""General (non-Cartesian) workloads through the first-class workload axis.

The paper compares against VieM because applications are not always
Cartesian: coupled multi-physics codes, irregular meshes, or task graphs
produce arbitrary communication patterns.  Workloads are a first-class
axis of the evaluation stack — the same ``SweepSpec``/``MappingRequest``
pipeline (with all of its caching, batching and backends) evaluates

* structured grid x stencil products (``CartesianWorkload``),
* multi-stage stencil programs whose per-stage halo exchanges merge into
  one weighted communication graph (``StencilProgramWorkload``),
* irregular general graphs (``GraphWorkload``).

This example sweeps all three families over the paper's mappers on any
backend.  Cartesian-capable mappers evaluate the structured instances;
graph instances are served by ``graphmap`` (the VieM stand-in) while the
structured-only algorithms surface "not applicable" cells rather than
crashes.

Run:  python examples/general_graph_mapping.py [--backend thread|process:4|service:PORT]
"""

import argparse

import repro
from repro.metrics.cost import node_of_vertex
from repro.sweep import WORKLOAD_AXIS
from repro.workloads import (
    CartesianWorkload,
    StencilProgramWorkload,
    as_workload,
    clustered_workload,
    random_sparse_workload,
)


def build_spec(alloc: repro.NodeAllocation) -> repro.SweepSpec:
    """Instances x mappers over the three workload families."""
    p = alloc.total_processes
    grid = repro.CartesianGrid(repro.dims_create(p, 2))
    workloads = [
        ("cartesian", CartesianWorkload(grid, repro.nearest_neighbor(2))),
        (
            "program",
            StencilProgramWorkload(
                grid,
                [
                    ("advect", repro.nearest_neighbor(2)),
                    ("diffuse", repro.nearest_neighbor_with_hops(2)),
                ],
            ),
        ),
        ("random", as_workload(random_sparse_workload(p, degree=4, seed=1))),
        (
            "clustered",
            as_workload(
                clustered_workload(
                    alloc.num_nodes,
                    alloc.node_sizes[0],
                    intra_degree=6,
                    inter_links=2,
                    seed=1,
                )
            ),
        ),
    ]
    return repro.SweepSpec(
        instances=[
            repro.InstanceSpec.from_workload(w, alloc, label=label)
            for label, w in workloads
        ],
        stencils=[WORKLOAD_AXIS],
        mappers=["blocked", "hyperplane", "stencil_strips", "graphmap"],
        metrics=[
            repro.topology_cut_metric(
                repro.Torus3DTopology((2, 2, 2)), contention=False
            )
        ],
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        default="thread",
        metavar="SPEC",
        help="execution backend: serial, thread[:N], process[:N], "
        "cluster:HOST:PORT or service:HOST:PORT (default: thread)",
    )
    args = parser.parse_args()

    alloc = repro.NodeAllocation.homogeneous(8, 16)
    spec = build_spec(alloc)
    results = repro.run(spec, backend=args.backend)

    print(
        f"{alloc.total_processes} processes on {alloc.num_nodes} nodes "
        f"x {alloc.node_sizes[0]}, backend={args.backend}\n"
    )
    print(results.to_table())

    # Jsum pivot: where structure helps and where only graphmap applies.
    print("\nJsum by workload x mapper (None = mapper not applicable):")
    for instance, row in results.pivot(values="jsum").items():
        cells = "  ".join(f"{m}={v}" for m, v in row.items())
        print(f"  {instance:<10} {cells}")

    # The clustered workload has a known near-optimal structure: one
    # cluster per node cuts only the coupling links.
    best = results.filter(instance="clustered", mapper="graphmap").rows[0]
    nodes = node_of_vertex(best.result.perm, alloc)
    size = alloc.node_sizes[0]
    purity = sum(
        1
        for c in range(alloc.num_nodes)
        if len(set(nodes[c * size : (c + 1) * size].tolist())) == 1
    )
    print(
        f"\nclustered workload: {purity}/{alloc.num_nodes} clusters placed "
        "on a single node"
    )


if __name__ == "__main__":
    main()
