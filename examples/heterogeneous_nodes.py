#!/usr/bin/env python3
"""Mapping with uneven processes per node.

A key contribution of the paper: previous Cartesian mapping algorithms
(Nodecart) require the same process count on every node and a
factorisable layout, but real allocations are often ragged — a shared
node, a partially-filled last node, or heterogeneous hardware.  The
paper's algorithms only need the node sizes (Hyperplane and Stencil
Strips use the *mean* as their ``n``; the k-d tree ignores it entirely).

This example builds such a ragged allocation, shows Nodecart reject it,
and compares the quality of the remaining algorithms.

Run:  python examples/heterogeneous_nodes.py
"""

import repro


def main() -> None:
    # 14 nodes: a mix of 48- and 32-core nodes plus a half-filled one
    # (p = 576, so the grid is a clean 24 x 24).
    node_sizes = [48, 48, 48, 32, 48, 48, 32, 48, 48, 32, 48, 48, 32, 16]
    alloc = repro.NodeAllocation(node_sizes)
    p = alloc.total_processes
    grid = repro.CartesianGrid(repro.dims_create(p, 2))
    stencil = repro.nearest_neighbor(2)
    print(f"{alloc.num_nodes} nodes, sizes {sorted(set(node_sizes))}, "
          f"p={p}, grid {grid.dims}")

    # Nodecart requires homogeneous nodes — the paper's motivation.
    try:
        repro.NodecartMapper().map_ranks(grid, stencil, alloc)
    except repro.MappingError as exc:
        print(f"\nnodecart rejects the instance, as expected:\n  {exc}")

    edges = repro.communication_edges(grid, stencil)
    blocked = repro.BlockedMapper().map_ranks(grid, stencil, alloc)
    base = repro.evaluate_mapping(grid, stencil, blocked, alloc, edges=edges)
    print(f"\n{'algorithm':<22} {'Jsum':>6} {'Jmax':>6} {'reduction':>10}")
    print(f"{'blocked':<22} {base.jsum:>6} {base.jmax:>6} {'1.00':>10}")

    mappers = [
        repro.HyperplaneMapper(),                        # n = mean
        repro.HyperplaneMapper(node_size_strategy="min"),
        repro.HyperplaneMapper(node_size_strategy="max"),
        repro.KDTreeMapper(),
        repro.StencilStripsMapper(),
        repro.GraphMapper(),
    ]
    labels = [
        "hyperplane (mean n)",
        "hyperplane (min n)",
        "hyperplane (max n)",
        "kd_tree",
        "stencil_strips",
        "graphmap",
    ]
    for label, mapper in zip(labels, mappers):
        perm = mapper.map_ranks(grid, stencil, alloc)
        cost = repro.evaluate_mapping(grid, stencil, perm, alloc, edges=edges)
        print(f"{label:<22} {cost.jsum:>6} {cost.jmax:>6} "
              f"{cost.jsum / base.jsum:>10.2f}")

    # Every node's capacity is respected exactly:
    from repro.metrics import node_of_vertex
    import numpy as np

    perm = repro.HyperplaneMapper().map_ranks(grid, stencil, alloc)
    per_node = np.bincount(node_of_vertex(perm, alloc), minlength=alloc.num_nodes)
    assert tuple(per_node) == alloc.node_sizes
    print("\nall node capacities respected exactly")


if __name__ == "__main__":
    main()
