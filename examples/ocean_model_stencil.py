#!/usr/bin/env python3
"""Higher-order ocean-model stencil: mapping a hops neighbourhood.

Ocean and climate codes (the paper's motivating applications) often use
higher-order finite differences along one axis — e.g. a fourth-order
advection scheme needs values at distances 1, 2 and 3 upstream and
downstream.  That is exactly the paper's *nearest neighbour with hops*
stencil: MPI's Cartesian interface cannot express it, which is why the
paper proposes ``MPIX_Cart_stencil_comm`` (Listing 1).

This example builds the stencil from the flattened Listing 1 array,
creates reordered communicators with every algorithm, and compares
inter-node traffic and simulated exchange times on the SuperMUC-NG
model for a production-sized run (100 nodes x 48 processes).

Run:  python examples/ocean_model_stencil.py
"""

import repro
from repro.mpisim import SimMPI, cart_stencil_comm

NODES, CORES = 100, 48
MESSAGE_BYTES = 128 * 1024  # one latitude strip of tracer data per neighbour


def main() -> None:
    machine = repro.supermuc_ng()
    job = SimMPI(machine, num_nodes=NODES, processes_per_node=CORES)
    dims = repro.dims_create(job.allocation.total_processes, 2)

    # Listing 1: flattened relative offsets, k = 8 neighbours in 2-D —
    # the nearest-neighbour cross plus 2- and 3-hops along dimension 0.
    flat_stencil = [
        +1, 0,   -1, 0,   0, +1,   0, -1,
        +2, 0,   -2, 0,   +3, 0,   -3, 0,
    ]
    k = len(flat_stencil) // len(dims)
    print(f"ocean model: grid {dims}, k={k} neighbours, "
          f"{NODES} nodes x {CORES} processes on {machine.name}")

    results = {}
    for name in ("blocked", "nodecart", "hyperplane", "kd_tree",
                 "stencil_strips", "graphmap"):
        mapper = repro.get_mapper(name)
        try:
            cart = cart_stencil_comm(
                job, dims, flat_stencil, mapper=mapper, reorder=name != "blocked"
            )
        except repro.MappingError as exc:
            print(f"  {name:<16} not applicable: {exc}")
            continue
        cost = repro.evaluate_mapping(
            cart.grid, cart.stencil, cart.perm, job.allocation
        )
        model = machine.model(NODES)
        t = model.alltoall_time(
            cart.grid, cart.stencil, cart.perm, job.allocation, MESSAGE_BYTES
        )
        results[name] = (cost, t)

    base = results["blocked"][1]
    print(f"\n{'algorithm':<16} {'Jsum':>7} {'Jmax':>6} {'time [ms]':>10} {'speedup':>8}")
    for name, (cost, t) in results.items():
        print(f"{name:<16} {cost.jsum:>7} {cost.jmax:>6} "
              f"{t * 1e3:>10.2f} {base / t:>7.2f}x")

    # Verify the neighbour ordering the application would rely on.
    cart = cart_stencil_comm(job, dims, flat_stencil,
                             mapper=repro.StencilStripsMapper())
    centre = cart.rank_at([dims[0] // 2, dims[1] // 2])
    print(f"\nneighbours of grid centre (rank {centre}):")
    for offset, nbr in zip(cart.stencil.offsets, cart.neighbors(centre)):
        print(f"  offset {offset}: rank {nbr}")


if __name__ == "__main__":
    main()
