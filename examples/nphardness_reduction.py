#!/usr/bin/env python3
"""The NP-hardness construction of Theorem IV.3, executably.

Transforms 3-WAY-PARTITION instances into GRID-PARTITION instances and
verifies the correspondence both ways:

* the paper's example ``I' = {6, 3, 3, 2, 2, 2}`` (Figure 3) is a yes
  instance whose witness mapping meets the bound ``Q = 2|I'| - 6``,
* a no instance's reduced grid cannot reach the bound (checked with the
  exact branch-and-bound solver).

Run:  python examples/nphardness_reduction.py
"""

import numpy as np

from repro.nphard import (
    ThreeWayPartitionInstance,
    min_jsum_bruteforce,
    random_no_instance,
    reduce_to_grid_partition,
    witness_mapping,
)


def main() -> None:
    # --- the paper's Figure 3 example ----------------------------------
    inst = ThreeWayPartitionInstance([6, 3, 3, 2, 2, 2])
    groups = inst.solve()
    print(f"I' = {inst.items}: yes instance, witness groups {groups}")

    reduced = reduce_to_grid_partition(inst)
    print(f"reduced grid {reduced.grid.dims}, stencil "
          f"{reduced.stencil.offsets}, bound Q = {reduced.bound}")

    ordered, perm, cost = witness_mapping(inst)
    print(f"witness mapping: Jsum = {cost.jsum} <= Q = {ordered.bound}")

    exact = min_jsum_bruteforce(reduced.grid, reduced.stencil, reduced.node_sizes)
    print(f"exact minimum Jsum = {exact} (== Q exactly for a yes instance)")

    # --- a no instance ---------------------------------------------------
    rng = np.random.default_rng(3)
    while True:
        no = random_no_instance(rng, size=6, max_value=6)
        if no.total % 3 == 0:
            break
    reduced_no = reduce_to_grid_partition(no)
    exact_no = min_jsum_bruteforce(
        reduced_no.grid, reduced_no.stencil, reduced_no.node_sizes
    )
    print(f"\nI' = {no.items}: no instance")
    print(f"exact minimum Jsum = {exact_no} > Q = {reduced_no.bound} "
          f"(the bound is unreachable)")
    assert exact_no > reduced_no.bound


if __name__ == "__main__":
    main()
