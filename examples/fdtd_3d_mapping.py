#!/usr/bin/env python3
"""3-D FDTD (computational electromagnetics) process mapping.

Finite-difference time-domain codes — one of the stencil applications
the paper's introduction cites — update Yee-cell fields with a 6-point
nearest-neighbour exchange in 3-D.  This example maps a 3-D process
grid onto JUWELS nodes, inspects the *geometry* each algorithm produces
(bounding boxes, contiguity) and compares halo-exchange times with a
volume-realistic message size derived from the tile shape.

Run:  python examples/fdtd_3d_mapping.py
"""

import repro
from repro.visualize import node_regions, render_region_summary
from repro.workloads import halo_exchange_volume

NODES, CORES = 64, 48
TILE = (64, 64, 64)  # Yee cells per process


def main() -> None:
    machine = repro.juwels()
    p = NODES * CORES
    grid = repro.CartesianGrid(repro.dims_create(p, 3))
    stencil = repro.nearest_neighbor(3)
    alloc = repro.NodeAllocation.homogeneous(NODES, CORES)
    print(f"FDTD: {p} processes on grid {grid.dims}, "
          f"{NODES} JUWELS nodes x {CORES}")

    volumes = halo_exchange_volume(grid, stencil, TILE, element_bytes=8)
    message = max(volumes.values())  # one face of the tile
    print(f"tile {TILE}: face message = {message // 1024} KiB per neighbour")

    edges = repro.communication_edges(grid, stencil)
    model = machine.model(NODES)
    blocked = repro.BlockedMapper().map_ranks(grid, stencil, alloc)
    base = model.alltoall_time(grid, stencil, blocked, alloc, message, edges=edges)

    print(f"\n{'algorithm':<16} {'Jsum':>7} {'Jmax':>6} {'time[ms]':>9} "
          f"{'speedup':>8}  regions")
    for name in ("blocked", "nodecart", "hyperplane", "kd_tree", "stencil_strips"):
        mapper = repro.get_mapper(name)
        perm = mapper.map_ranks(grid, stencil, alloc)
        cost = repro.evaluate_mapping(grid, stencil, perm, alloc, edges=edges)
        t = model.alltoall_time(grid, stencil, perm, alloc, message, edges=edges)
        regions = node_regions(grid, perm, alloc)
        contiguous = sum(1 for r in regions if r.contiguous)
        print(f"{name:<16} {cost.jsum:>7} {cost.jmax:>6} {t * 1e3:>9.2f} "
              f"{base / t:>7.2f}x  {contiguous}/{len(regions)} contiguous")

    print("\nstencil strips region geometry:")
    perm = repro.StencilStripsMapper().map_ranks(grid, stencil, alloc)
    print(render_region_summary(node_regions(grid, perm, alloc)))


if __name__ == "__main__":
    main()
