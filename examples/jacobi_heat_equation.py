#!/usr/bin/env python3
"""2-D Jacobi heat diffusion on the simulated MPI layer.

The canonical stencil workload from the paper's introduction: a 2-D
domain is decomposed into tiles, one per process; every Jacobi sweep
averages the four neighbours of each cell, so tiles exchange halo rows
and columns with their grid neighbours each iteration.

The example demonstrates three things:

1. the simulated ``neighbor_alltoall`` moves *real* data — the
   distributed result is verified against a sequential solver,
2. rank reordering is transparent to the application (the code is
   written against grid coordinates only),
3. a better mapping reduces the simulated communication time of the
   whole run.

Run:  python examples/jacobi_heat_equation.py
"""

import numpy as np

import repro
from repro.mpisim import SimMPI, cart_stencil_comm

TILE = 64          # cells per tile side
ITERATIONS = 20    # Jacobi sweeps
NODES, CORES = 16, 12


def sequential_reference(field: np.ndarray, iterations: int) -> np.ndarray:
    """Plain numpy Jacobi with fixed (zero) boundary values."""
    f = field.copy()
    for _ in range(iterations):
        nxt = f.copy()
        nxt[1:-1, 1:-1] = 0.25 * (
            f[:-2, 1:-1] + f[2:, 1:-1] + f[1:-1, :-2] + f[1:-1, 2:]
        )
        f = nxt
    return f


def distributed_jacobi(
    mapper: repro.Mapper | None,
) -> tuple[np.ndarray, float, np.ndarray]:
    """Run the tiled Jacobi solver under one mapping.

    Returns the final assembled field, the simulated communication time,
    and the initial field (for the sequential reference).
    """
    job = SimMPI(repro.vsc4(), num_nodes=NODES, processes_per_node=CORES)
    dims = repro.dims_create(job.allocation.total_processes, 2)
    stencil = repro.nearest_neighbor(2)
    cart = cart_stencil_comm(job, dims, stencil, mapper=mapper)

    rows, cols = dims[0] * TILE, dims[1] * TILE
    rng = np.random.default_rng(42)
    global_field = rng.random((rows, cols))
    # Dirichlet boundary: zero rim, as in the sequential reference.
    global_field[0, :] = global_field[-1, :] = 0.0
    global_field[:, 0] = global_field[:, -1] = 0.0

    # Scatter tiles: the rank at grid coordinate (i, j) owns tile (i, j).
    tiles = {}
    for r in range(cart.size):
        i, j = cart.coords(r)
        tiles[r] = global_field[
            i * TILE : (i + 1) * TILE, j * TILE : (j + 1) * TILE
        ].copy()

    # Stencil order: (+1,0), (-1,0), (0,+1), (0,-1) = south, north, east, west.
    for _ in range(ITERATIONS):
        send = np.zeros((cart.size, 4, TILE))
        for r, tile in tiles.items():
            send[r, 0] = tile[-1, :]   # to south neighbour: my last row
            send[r, 1] = tile[0, :]    # to north neighbour: my first row
            send[r, 2] = tile[:, -1]   # to east neighbour:  my last column
            send[r, 3] = tile[:, 0]    # to west neighbour:  my first column
        result = cart.neighbor_alltoall(send)

        for r, tile in tiles.items():
            halo = np.zeros((TILE + 2, TILE + 2))
            halo[1:-1, 1:-1] = tile
            # recv slot j arrives from offset -R_j:
            if result.valid[r, 0]:
                halo[0, 1:-1] = result.data[r, 0]     # from north (-1,0): its last row
            if result.valid[r, 1]:
                halo[-1, 1:-1] = result.data[r, 1]    # from south (+1,0): its first row
            if result.valid[r, 2]:
                halo[1:-1, 0] = result.data[r, 2]     # from west (0,-1): its last col
            if result.valid[r, 3]:
                halo[1:-1, -1] = result.data[r, 3]    # from east (0,+1): its first col
            new = 0.25 * (
                halo[:-2, 1:-1] + halo[2:, 1:-1] + halo[1:-1, :-2] + halo[1:-1, 2:]
            )
            # Fixed boundary cells keep their (zero) value.
            i, j = cart.coords(r)
            if i == 0:
                new[0, :] = tile[0, :]
            if i == dims[0] - 1:
                new[-1, :] = tile[-1, :]
            if j == 0:
                new[:, 0] = tile[:, 0]
            if j == dims[1] - 1:
                new[:, -1] = tile[:, -1]
            tiles[r] = new

    assembled = np.zeros_like(global_field)
    for r, tile in tiles.items():
        i, j = cart.coords(r)
        assembled[i * TILE : (i + 1) * TILE, j * TILE : (j + 1) * TILE] = tile
    return assembled, job.clock, global_field


def main() -> None:
    print(f"Jacobi on {NODES * CORES} ranks ({NODES} nodes x {CORES}), "
          f"{ITERATIONS} sweeps, tiles {TILE}x{TILE}")
    results = {}
    reference = None
    for name, mapper in (
        ("blocked", None),
        ("hyperplane", repro.HyperplaneMapper()),
        ("stencil_strips", repro.StencilStripsMapper()),
    ):
        field, elapsed, initial = distributed_jacobi(mapper)
        if reference is None:
            reference = sequential_reference(initial, ITERATIONS)
        err = np.abs(field - reference).max()
        results[name] = elapsed
        status = "OK " if err < 1e-12 else "FAIL"
        print(f"  {name:<16} max|distributed - sequential| = {err:.2e} [{status}]  "
              f"simulated comm time = {elapsed * 1e3:.3f} ms")
    base = results["blocked"]
    for name, t in results.items():
        if name != "blocked":
            print(f"  {name} communication speedup over blocked: {base / t:.2f}x")


if __name__ == "__main__":
    main()
