#!/usr/bin/env python3
"""Quickstart: map a stencil application onto compute nodes.

Scenario: a 2-D nearest-neighbour stencil code runs with 2400 MPI
processes on 50 nodes of 48 cores (the paper's Figure 6 instance).  The
scheduler hands out ranks in blocks; we compare how much inter-node
communication each mapping algorithm removes and how much faster a
neighbour exchange becomes on the VSC4 model.

Run:  python examples/quickstart.py
"""

import repro


def main() -> None:
    # --- the instance -------------------------------------------------
    num_nodes, cores = 50, 48
    p = num_nodes * cores
    grid = repro.CartesianGrid(repro.dims_create(p, 2))
    stencil = repro.nearest_neighbor(2)
    alloc = repro.NodeAllocation.homogeneous(num_nodes, cores)
    print(f"grid {grid.dims}, stencil {stencil.name}, {num_nodes} nodes x {cores}")

    # --- evaluate every algorithm -------------------------------------
    edges = repro.communication_edges(grid, stencil)
    machine = repro.vsc4()
    model = machine.model(num_nodes)
    message = 512 * 1024  # bytes per neighbour

    blocked = repro.BlockedMapper().map_ranks(grid, stencil, alloc)
    base_cost = repro.evaluate_mapping(grid, stencil, blocked, alloc, edges=edges)
    base_time = model.alltoall_time(grid, stencil, blocked, alloc, message, edges=edges)
    print(f"\n{'algorithm':<16} {'Jsum':>7} {'Jmax':>6} {'time [ms]':>10} {'speedup':>8}")
    print(f"{'blocked':<16} {base_cost.jsum:>7} {base_cost.jmax:>6} "
          f"{base_time * 1e3:>10.2f} {'1.00x':>8}")

    for name in ("hyperplane", "kd_tree", "stencil_strips", "nodecart", "graphmap"):
        mapper = repro.get_mapper(name)
        perm = mapper.map_ranks(grid, stencil, alloc)
        cost = repro.evaluate_mapping(grid, stencil, perm, alloc, edges=edges)
        t = model.alltoall_time(grid, stencil, perm, alloc, message, edges=edges)
        print(f"{name:<16} {cost.jsum:>7} {cost.jmax:>6} "
              f"{t * 1e3:>10.2f} {base_time / t:>7.2f}x")

    # --- the distributed property --------------------------------------
    # Every process can compute its own new rank without communication:
    mapper = repro.HyperplaneMapper()
    rank = 1234
    new_rank = mapper.compute_rank(grid, stencil, alloc, rank)
    coords = grid.coords_of(new_rank)
    print(f"\nrank {rank} computes its new position locally: "
          f"new rank {new_rank}, grid coordinate {coords}")


if __name__ == "__main__":
    main()
