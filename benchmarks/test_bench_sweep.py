"""Benchmark: the declarative sweep layer's overhead over the raw engine.

``repro.sweep.run`` compiles a SweepSpec into MappingRequests, executes
them, and wraps the results in a ResultSet.  The acceptance criterion
pinned here: on a warm cache the whole declarative layer — spec compile
plus ResultSet construction — costs less than 5% over calling
``EvaluationEngine.evaluate_batch`` with the identical request list by
hand.  If this regresses, the sweep seam has stopped being free and
every driver pays for it.
"""

from __future__ import annotations

import time

import pytest

from repro import EvaluationEngine, InstanceSpec, SweepSpec, run
from repro.sweep import ResultSet, _row_from_cell

from .conftest import WORKLOAD_MAPPERS, WORKLOAD_NODE_COUNTS, WORKLOAD_PROCESSES_PER_NODE

#: Enough cells that the per-cell overhead dominates fixed costs:
#: 6 instances x 3 families x 4 mappers = 72 cells.
FAMILIES = ("nearest_neighbor", "nearest_neighbor_with_hops", "component")

#: Prebuilt axis objects: the raw baseline's request list reuses its
#: grids/allocations across calls, so the declarative side gets the
#: same treatment — the measured delta is spec *compilation* (cells ->
#: MappingRequests) plus ResultSet construction, not grid arithmetic.
INSTANCES = tuple(
    InstanceSpec.from_nodes(n, WORKLOAD_PROCESSES_PER_NODE)
    for n in WORKLOAD_NODE_COUNTS
)


def _spec() -> SweepSpec:
    return SweepSpec(
        instances=INSTANCES,
        stencils=FAMILIES,
        mappers=WORKLOAD_MAPPERS,
    )


@pytest.fixture(scope="module")
def warm_engine():
    engine = EvaluationEngine(max_workers=4)
    run(_spec(), backend=engine)  # warm every perm/cost/edge cache
    yield engine
    engine.close()


def _time_best_of(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_sweep_overhead_under_five_percent_warm(warm_engine):
    """spec-compile + ResultSet vs. raw evaluate_batch on a warm cache.

    This measures the driver pattern: a spec is compiled once (cells are
    cached on the SweepSpec) and executed through ``run``, against the
    identical pre-built request list fed straight to the engine.  Row
    materialization is lazy, so the declarative layer's blocking cost is
    the request iteration plus the deferred ResultSet — budget: 5%.
    One-time spec compilation is asserted separately below.
    """
    spec = _spec()
    spec.cells()  # one-time compile, outside the measured region
    raw_requests = spec.compile()  # identical work, pre-compiled

    def raw():
        warm_engine.evaluate_batch(raw_requests)

    def declarative():
        run(spec, backend=warm_engine)

    raw_time = _time_best_of(raw)
    sweep_time = _time_best_of(declarative)
    overhead = sweep_time / raw_time - 1.0
    print(
        f"\nwarm-cache: raw={raw_time * 1e3:.2f} ms  "
        f"sweep={sweep_time * 1e3:.2f} ms  overhead={overhead * 100:+.1f}%"
    )
    assert sweep_time <= raw_time * 1.05, (
        f"declarative layer costs {overhead * 100:.1f}% over raw "
        f"evaluate_batch (budget: 5%)"
    )


def test_spec_compile_cost_is_bounded(warm_engine):
    """One-time compilation stays cheap relative to one warm execution."""
    raw_requests = _spec().compile()
    raw_time = _time_best_of(lambda: warm_engine.evaluate_batch(raw_requests))
    compile_time = _time_best_of(lambda: _spec().cells())
    print(
        f"\ncompile={compile_time * 1e3:.2f} ms for {len(raw_requests)} "
        f"cells vs. warm batch={raw_time * 1e3:.2f} ms"
    )
    # compilation happens once per sweep; it must not dwarf the batch
    assert compile_time <= max(raw_time, 0.005)


def test_results_match_raw_engine(warm_engine):
    """The overhead comparison is apples-to-apples: same numbers out."""
    spec = _spec()
    results = run(spec, backend=warm_engine)
    raw = warm_engine.evaluate_batch(spec.compile())
    assert [(row.jsum, row.jmax) for row in results] == [
        (r.jsum, r.jmax) for r in raw
    ]


def test_bench_spec_compile(benchmark):
    """Compilation alone: the cross-product -> MappingRequest cost."""
    benchmark(lambda: _spec().cells())


def test_bench_sweep_warm(benchmark, warm_engine):
    """End-to-end declarative sweep on a warm engine."""
    result = benchmark(lambda: run(_spec(), backend=warm_engine))
    assert len(result) == len(_spec().cells())


def test_bench_resultset_construction(benchmark, warm_engine):
    """ResultSet wrapping alone, engine results pre-computed."""
    spec = _spec()
    cells = spec.cells()
    results = warm_engine.evaluate_batch(spec.compile())

    def wrap():
        iterator = iter(results)
        return ResultSet(
            _row_from_cell(cell, None if cell.request is None else next(iterator))
            for cell in cells
        )

    wrapped = benchmark(wrap)
    assert len(wrapped) == len(cells)
