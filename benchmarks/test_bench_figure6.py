"""Benchmark E1/E2: Figure 6 — scores and speedups at N = 50.

Regenerates the left-column score panels (exact ``Jsum``/``Jmax`` per
algorithm and stencil) and the three speedup panels (VSC4, SuperMUC-NG,
JUWELS).  The benchmark clock measures the regeneration cost of each
panel; the panel contents are checked against the paper's findings.
"""

import pytest

from repro.experiments import STENCIL_FAMILIES
from repro.experiments.figure6 import figure6_scores, figure6_speedups
from repro.experiments.throughput import FIGURE_MESSAGE_SIZES

MACHINES = ("VSC4", "SuperMUC-NG", "JUWELS")


def test_scores_n50(benchmark, context_n50):
    scores = benchmark(figure6_scores, context_n50)
    assert set(scores) == set(STENCIL_FAMILIES)
    nn = scores["nearest_neighbor"]
    assert nn["blocked"] == (4704, 96)
    assert nn["stencil_strips"] == (1244, 28)
    assert nn["hyperplane"] == (1328, 38)
    # every algorithm beats blocked on every stencil
    for family, per_mapper in scores.items():
        for name, pair in per_mapper.items():
            if name in ("blocked", "random") or pair is None:
                continue
            assert pair[0] < per_mapper["blocked"][0], (family, name)


@pytest.mark.parametrize("machine", MACHINES)
@pytest.mark.parametrize("family", sorted(STENCIL_FAMILIES))
def test_speedups_n50(benchmark, context_n50, machine, family):
    series = benchmark(
        figure6_speedups,
        machine,
        family,
        context=context_n50,
        repetitions=50,
    )
    # shape checks mirroring the paper's panels
    assert set(series) >= {"hyperplane", "kd_tree", "stencil_strips", "nodecart"}
    for cells in series.values():
        assert [c.message_size for c in cells] == list(FIGURE_MESSAGE_SIZES)
    largest = FIGURE_MESSAGE_SIZES[-1]
    by = {m: {c.message_size: c for c in cells} for m, cells in series.items()}
    # the specialised algorithms beat Nodecart at the largest size
    for name in ("hyperplane", "stencil_strips"):
        assert (
            by[name][largest].speedup_over_blocked
            > by["nodecart"][largest].speedup_over_blocked
        ), (machine, family, name)
    # speedups grow with message size (bandwidth regime)
    first = FIGURE_MESSAGE_SIZES[0]
    assert (
        by["stencil_strips"][largest].speedup_over_blocked
        >= by["stencil_strips"][first].speedup_over_blocked
    )
