"""Benchmark smoke: batched engine vs the naive per-instance loop.

The acceptance workload of the engine subsystem: >= 100 evaluations
sharing <= 5 distinct grids.  The naive path is what the experiment
drivers did before the engine existed — rebuild the communication-edge
array, rerun the mapper, and score one permutation at a time.  The
warm-cache engine must produce bit-identical ``Jsum``/``Jmax`` and be at
least 3x faster (in practice the margin is far larger, since the edge
rebuild dominates the naive loop).
"""

from __future__ import annotations

import time

from repro import (
    CartesianGrid,
    EvaluationEngine,
    MappingRequest,
    NodeAllocation,
    evaluate_mapping,
    nearest_neighbor,
)
from repro.engine import create_mapper
from repro.grid.dims import dims_create
from repro.grid.graph import communication_edges

#: 5 distinct grids x 5 deterministic mappers x 5 sweeps = 125 evaluations.
NODE_COUNTS = (10, 12, 15, 18, 20)
PROCESSES_PER_NODE = 24
MAPPERS = ("blocked", "hyperplane", "kd_tree", "stencil_strips", "nodecart")
SWEEPS = 5


def _workload() -> list[MappingRequest]:
    stencil = nearest_neighbor(2)
    requests = []
    for _ in range(SWEEPS):
        for num_nodes in NODE_COUNTS:
            p = num_nodes * PROCESSES_PER_NODE
            grid = CartesianGrid(dims_create(p, 2))
            alloc = NodeAllocation.homogeneous(num_nodes, PROCESSES_PER_NODE)
            for name in MAPPERS:
                requests.append(MappingRequest(grid, stencil, alloc, name))
    return requests


def _naive_loop(requests: list[MappingRequest]) -> list[tuple[int, int]]:
    """The pre-engine inner loop: recompute everything per evaluation."""
    scores = []
    for request in requests:
        edges = communication_edges(request.grid, request.stencil)
        perm = create_mapper(request.mapper).map_ranks(
            request.grid, request.stencil, request.alloc
        )
        cost = evaluate_mapping(
            request.grid, request.stencil, perm, request.alloc, edges=edges
        )
        scores.append((cost.jsum, cost.jmax))
    return scores


def test_engine_beats_naive_loop_3x():
    requests = _workload()
    assert len(requests) >= 100
    assert len({r.grid for r in requests}) <= 5

    start = time.perf_counter()
    naive_scores = _naive_loop(requests)
    naive_time = time.perf_counter() - start

    engine = EvaluationEngine()
    engine.evaluate_batch(requests)  # warm the caches
    start = time.perf_counter()
    results = engine.evaluate_batch(requests)
    engine_time = time.perf_counter() - start

    engine_scores = [(r.jsum, r.jmax) for r in results]
    assert engine_scores == naive_scores

    stats = engine.cache_stats()
    assert stats["edges"].hits > 0 and stats["costs"].hits > 0
    speedup = naive_time / engine_time if engine_time else float("inf")
    assert speedup >= 3.0, (
        f"warm engine only {speedup:.1f}x faster "
        f"({naive_time:.3f}s naive vs {engine_time:.3f}s batched)"
    )


def test_cold_engine_matches_naive_values():
    """Even cold (first batch), the engine's numbers are identical."""
    requests = _workload()[: len(NODE_COUNTS) * len(MAPPERS)]
    naive_scores = _naive_loop(requests)
    results = EvaluationEngine().evaluate_batch(requests)
    assert [(r.jsum, r.jmax) for r in results] == naive_scores
