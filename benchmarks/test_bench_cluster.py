"""Benchmark smoke: socket-cluster backend on localhost workers.

The multi-host counterpart of ``test_bench_sharding``: a figure8-style
multi-instance sweep shipped over TCP to worker subprocesses.  As with
the process backend, the pinned property is *correctness under
distribution* — byte-identical costs after a pickle round-trip over the
wire — plus a timing report.  Localhost socket + subprocess overhead
means no relative-speed assertion is meaningful here; the cluster tier
pays off when workers live on other machines.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

from repro import ClusterBackend, EvaluationEngine

from .conftest import backend_workload as _workload
from .conftest import result_signature as _signature

_SRC_DIR = str(Path(__file__).resolve().parent.parent / "src")


def _spawn_worker(port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.engine.cluster.worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--backend",
            "serial",
            "--connect-timeout",
            "60",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def test_cluster_backend_agrees_with_serial_over_sockets():
    requests = _workload()
    reference = [
        _signature(r)
        for r in EvaluationEngine(max_workers=1).evaluate_batch(requests)
    ]

    with ClusterBackend("127.0.0.1", 0, heartbeat_timeout=10.0) as backend:
        workers = [_spawn_worker(backend.port) for _ in range(2)]
        backend.wait_for_workers(2, timeout=120)
        start = time.perf_counter()
        results = backend.evaluate_batch(requests)
        elapsed = time.perf_counter() - start
    assert [_signature(r) for r in results] == reference
    assert [w.wait(timeout=30) for w in workers] == [0, 0]
    print(
        f"\ncluster backend: {len(requests)} requests over 2 localhost "
        f"workers in {elapsed * 1e3:.1f} ms"
    )
