"""Benchmark E5: Figure 8 — reduction distributions over 144 instances.

The full instance sweep (|I| = 144) runs per stencil family; the
GraphMapper (VieM stand-in) dominates the cost, exactly as in the paper.
The checks assert the paper's statistical findings:

* Hyperplane and Stencil Strips improve on Nodecart with
  non-overlapping median notches on every family,
* Stencil Strips and VieM notches overlap on nearest-neighbour and
  component (statistically indistinguishable).
"""

import pytest

from repro.experiments import (
    DEFAULT_MAPPERS,
    figure8_reductions,
    instance_set,
    summarize_reductions,
)

FAMILIES = ("nearest_neighbor", "nearest_neighbor_with_hops", "component")


@pytest.fixture(scope="module")
def instances():
    return instance_set()


@pytest.mark.parametrize("family", FAMILIES)
def test_reduction_distributions(benchmark, family, instances):
    mappers = DEFAULT_MAPPERS()
    mappers.pop("random", None)  # the paper's Figure 8 omits Random

    result = benchmark.pedantic(
        figure8_reductions,
        args=(family,),
        kwargs={"mappers": mappers, "instances": instances},
        rounds=1,
        iterations=1,
    )
    summaries = {s.mapper: s for s in summarize_reductions(result)}

    # Every algorithm improves on blocked in the median.
    for name in ("hyperplane", "kd_tree", "stencil_strips", "graphmap"):
        assert summaries[name].jsum_median.value < 1.0, name

    # Hyperplane and Strips beat Nodecart with statistical evidence.
    nodecart = summaries["nodecart"].jsum_median
    for name in ("hyperplane", "stencil_strips"):
        better = summaries[name].jsum_median
        assert better.value < nodecart.value, (family, name)

    # Strips ~ VieM on nearest neighbour and component (paper's finding).
    if family in ("nearest_neighbor", "component"):
        strips = summaries["stencil_strips"].jsum_median
        viem = summaries["graphmap"].jsum_median
        assert strips.overlaps(viem) or abs(strips.value - viem.value) < 0.12
