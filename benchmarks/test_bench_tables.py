"""Benchmarks E7-E12: the appendix tables (II-VII).

One benchmark per table: {VSC4, SuperMUC-NG, JUWELS} x {N=50, N=100},
each producing the full 14-sizes x 3-stencils x 7-mappings grid of mean
times with confidence intervals.  The content checks compare time
*ratios* against the corresponding paper rows (who wins and by roughly
what factor at the bandwidth end).
"""

import pytest

from repro.experiments.tables import TABLE_INDEX, TABLE_MESSAGE_SIZES, appendix_table

#: Paper ratios blocked/mapper at 512 KiB (bandwidth regime), NN stencil.
#: Derived from Tables II-VII; the reproduction must land within a band.
PAPER_NN_SPEEDUP_512K = {
    ("VSC4", 50): {"hyperplane": 2.66, "kd_tree": 2.67, "stencil_strips": 2.70,
                   "nodecart": 1.71},
    ("VSC4", 100): {"hyperplane": 3.06, "kd_tree": 2.59, "stencil_strips": 3.05,
                    "nodecart": 2.43},
    ("SuperMUC-NG", 50): {"hyperplane": 2.00, "kd_tree": 2.19,
                          "stencil_strips": 2.52, "nodecart": 1.72},
    ("SuperMUC-NG", 100): {"hyperplane": 2.30, "kd_tree": 2.28,
                           "stencil_strips": 2.23, "nodecart": 2.32},
    ("JUWELS", 50): {"hyperplane": 2.03, "kd_tree": 1.71,
                     "stencil_strips": 2.01, "nodecart": 1.08},
    ("JUWELS", 100): {"hyperplane": 1.87, "kd_tree": 1.76,
                      "stencil_strips": 1.77, "nodecart": 1.62},
}


@pytest.mark.parametrize("table_id", sorted(TABLE_INDEX))
def test_appendix_table(benchmark, table_id, context_n50, context_n100):
    machine, num_nodes = TABLE_INDEX[table_id]
    context = context_n50 if num_nodes == 50 else context_n100

    table = benchmark.pedantic(
        appendix_table,
        args=(machine, num_nodes),
        kwargs={"context": context, "repetitions": 200},
        rounds=1,
        iterations=1,
    )

    # Structure: all cells populated for all mappers and sizes.
    assert table.message_sizes == TABLE_MESSAGE_SIZES
    for family in table.times:
        for mapper in table.mappers():
            for size in TABLE_MESSAGE_SIZES:
                assert table.cell(family, mapper, size) is not None

    # Content: the 512 KiB NN speedups land within 45% of the paper's
    # ratios (the substrate is a model, not the authors' testbed).  The
    # JUWELS N=50 Nodecart cell is excluded: the paper's JUWELS blocked
    # baseline is erratic there (non-monotonic in message size), see
    # EXPERIMENTS.md deviation D3.
    size = 524288
    blocked = table.cell("nearest_neighbor", "blocked", size).value
    for mapper, expected in PAPER_NN_SPEEDUP_512K[(machine, num_nodes)].items():
        ours = blocked / table.cell("nearest_neighbor", mapper, size).value
        assert ours > 1.0, (table_id, mapper)
        if (machine, num_nodes, mapper) == ("JUWELS", 50, "nodecart"):
            continue
        assert abs(ours - expected) / expected < 0.45, (
            table_id,
            mapper,
            ours,
            expected,
        )

    # Random is always the worst mapping at the bandwidth end.
    rand = table.cell("nearest_neighbor", "random", size).value
    assert rand > blocked
