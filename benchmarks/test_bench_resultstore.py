"""Benchmark: the memoized result-serving layer's warm path.

The content-addressed result store turns a repeat SweepSpec submission
into pure disk lookups: the daemon answers every cell from
``result-<sha256>.pkl`` entries and dispatches zero worker shards.  The
pinned properties are *correctness* (warm rows byte-identical to the
cold rows that populated the store) and *independence from workers*
(the warm daemon has none at all, so a single dispatched shard would
hang the test rather than silently recompute).  The benchmark clock
measures warm end-to-end throughput — client submit, store lookups,
ResultSet assembly — and publishes it via ``--benchmark-json`` as the
cache-path throughput artifact.
"""

from __future__ import annotations

import time

from repro import InstanceSpec, ServiceBackend, ServiceDaemon, SweepSpec, run

from .test_bench_cluster import _spawn_worker

#: 2 instances x 2 families x 3 mappers = 12 cells: enough that the
#: warm path's per-cell lookup cost dominates connection overhead.
def _spec() -> SweepSpec:
    return SweepSpec(
        instances=[
            InstanceSpec.from_nodes(4, 8),
            InstanceSpec.from_nodes(8, 8),
        ],
        stencils=["nearest_neighbor", "component"],
        mappers=["blocked", "hyperplane", "nodecart"],
    )


def test_warm_result_store_serves_without_workers(benchmark, tmp_path):
    spec = _spec()

    # Cold pass: one daemon + one real worker populates the store.
    with ServiceDaemon("127.0.0.1", 0, disk_cache_dir=tmp_path) as daemon:
        worker = _spawn_worker(daemon.port)
        daemon.wait_for_workers(1, timeout=120)
        start = time.perf_counter()
        with ServiceBackend("127.0.0.1", daemon.port) as backend:
            cold_rows = run(spec, backend).to_rows()
        cold = time.perf_counter() - start
    assert worker.wait(timeout=30) == 0

    # Warm pass: a fresh daemon on the same cache dir, zero workers.
    # Any dispatched shard would wait forever — completion *is* the
    # zero-dispatch assertion, and the job records double-check it.
    with ServiceDaemon("127.0.0.1", 0, disk_cache_dir=tmp_path) as daemon:
        assert daemon.num_workers == 0

        def warm_submit():
            with ServiceBackend("127.0.0.1", daemon.port) as backend:
                return run(spec, backend).to_rows()

        warm_rows = benchmark(warm_submit)
        records = daemon.jobs()
        assert records and all(r["shards"] == 0 for r in records), records
        assert all(r["state"] == "done" for r in records), records

    assert warm_rows == cold_rows
    cells = len(cold_rows)
    warm = benchmark.stats.stats.min if benchmark.stats else None
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["cold_seconds"] = cold
    if warm:
        print(
            f"\nresult store: {cells} cells cold {cold * 1e3:.1f} ms, "
            f"warm {warm * 1e3:.1f} ms ({cells / warm:.0f} cells/s, "
            f"zero shards dispatched)"
        )
