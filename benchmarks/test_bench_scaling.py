"""Benchmark E17 (extension): scaling of the mapping advantage.

Sweeps node counts around the paper's two scales and checks that the
advantage does not erode — the trend behind the paper's 'persists at
larger instances' conclusion (Section VI-D).
"""

from repro.experiments import scaling_sweep


def test_scaling_sweep(benchmark):
    sweep = benchmark.pedantic(
        scaling_sweep,
        args=("VSC4",),
        kwargs={"node_counts": (10, 25, 50, 75, 100)},
        rounds=1,
        iterations=1,
    )
    for name in ("hyperplane", "kd_tree", "stencil_strips"):
        points = sweep[name]
        assert [p.num_nodes for p in points] == [10, 25, 50, 75, 100]
        # the Jsum reduction stays well below 1 at every scale
        assert all(p.jsum_reduction < 0.78 for p in points), name
        # every scale gains; the gain *grows* with the node count (the
        # intra-node memory floor dominates small allocations)
        assert all(p.model_speedup > 1.0 for p in points), name
        assert points[-1].model_speedup > points[0].model_speedup, name
    for name in ("hyperplane", "stencil_strips"):
        at_scale = [p for p in sweep[name] if p.num_nodes >= 50]
        assert all(p.model_speedup > 2.0 for p in at_scale), name

    # Nodecart's reduction is consistently weaker than Stencil Strips'.
    nodecart = {p.num_nodes: p.jsum_reduction for p in sweep["nodecart"]}
    strips = {p.num_nodes: p.jsum_reduction for p in sweep["stencil_strips"]}
    assert all(strips[n] <= nodecart[n] for n in nodecart)
