"""Benchmark E18 (extension): volume-weighted hops exchange.

Re-evaluates the Figure 6 hops instance with per-offset halo volumes
(a 3-hop offset moves a 3-layer slab).  The paper's ranking must
survive the physically-realistic weighting.
"""

from repro.experiments import weighted_hops_experiment


def test_weighted_hops(benchmark, context_n50):
    results = benchmark.pedantic(
        weighted_hops_experiment,
        args=("VSC4",),
        kwargs={"num_nodes": 50, "context": context_n50},
        rounds=1,
        iterations=1,
    )
    # Ranking: every specialised algorithm beats Nodecart and blocked.
    nodecart = results["nodecart"].speedup_over_blocked
    for name in ("hyperplane", "kd_tree", "stencil_strips", "graphmap"):
        assert results[name].speedup_over_blocked > max(1.5, nodecart), name
    # Weighted bottleneck bytes follow the same order as the speedups.
    ordered = sorted(
        (r for r in results.values() if r.mapper != "random"),
        key=lambda r: r.bottleneck_bytes,
    )
    assert ordered[-1].mapper == "blocked"
