"""Benchmark E6: Figure 9 — instantiation time of the algorithms.

This is the one experiment whose absolute numbers are *real*: the
pytest-benchmark clock times this library's mapping computations on the
largest nearest-neighbour instance (N=100, grid 75 x 64).  The paper's
headline — VieM is about two orders of magnitude slower than the
distributed algorithms — must hold for our implementations too.
"""

import pytest

from repro.core import (
    GraphMapper,
    HyperplaneMapper,
    KDTreeMapper,
    NodecartMapper,
    StencilStripsMapper,
)

FAST = {
    "hyperplane": HyperplaneMapper,
    "kd_tree": KDTreeMapper,
    "stencil_strips": StencilStripsMapper,
    "nodecart": NodecartMapper,
}


@pytest.mark.parametrize("name", sorted(FAST))
def test_instantiation_full_mapping(benchmark, context_n100, name):
    """Full-permutation computation (what one process would coordinate)."""
    mapper = FAST[name]()
    grid, alloc = context_n100.grid, context_n100.alloc
    stencil = context_n100.stencil("nearest_neighbor")
    perm = benchmark(mapper.map_ranks, grid, stencil, alloc)
    assert len(perm) == grid.size


@pytest.mark.parametrize("name", sorted(FAST))
def test_instantiation_per_rank(benchmark, context_n100, name):
    """The distributed per-process cost (each rank computes its own)."""
    mapper = FAST[name]()
    grid, alloc = context_n100.grid, context_n100.alloc
    stencil = context_n100.stencil("nearest_neighbor")
    probe = grid.size // 2
    new_rank = benchmark(mapper.compute_rank, grid, stencil, alloc, probe)
    assert 0 <= new_rank < grid.size


def test_instantiation_graphmap(benchmark, context_n100):
    """The sequential VieM stand-in; expected ~2 orders slower."""
    mapper = GraphMapper(seed=1)
    grid, alloc = context_n100.grid, context_n100.alloc
    stencil = context_n100.stencil("nearest_neighbor")
    perm = benchmark.pedantic(
        mapper.map_ranks, args=(grid, stencil, alloc), rounds=3, iterations=1
    )
    assert len(perm) == grid.size


def test_viem_is_two_orders_slower(context_n100):
    """Direct assertion of the Figure 9 headline on wall-clock time."""
    import time

    grid, alloc = context_n100.grid, context_n100.alloc
    stencil = context_n100.stencil("nearest_neighbor")

    def timed(fn, reps):
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    fast = min(
        timed(lambda m=mapper(): m.map_ranks(grid, stencil, alloc), 5)
        for mapper in FAST.values()
    )
    slow = timed(lambda: GraphMapper(seed=1).map_ranks(grid, stencil, alloc), 2)
    assert slow > 50 * fast
