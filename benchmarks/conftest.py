"""Shared fixtures for the benchmark harness.

Every paper artefact (Figures 6-9, Tables II-VII) has one benchmark
module.  The pytest-benchmark timings measure this library's real cost
of regenerating the artefact; the artefact's *content* (scores, speedup
series, table rows) is printed to the report via ``--benchmark-*`` or by
running ``python -m repro.experiments <target>``.

Figure/table contexts are session-scoped: mappings are machine- and
size-independent, so they are computed once and shared.
"""

from __future__ import annotations

import pytest

from repro import CartesianGrid, MappingRequest, NodeAllocation, nearest_neighbor
from repro.experiments import EvaluationContext
from repro.experiments.context import DEFAULT_MAPPERS
from repro.grid.dims import dims_create

#: Shared figure8-style backend workload: distinct grids x deterministic
#: mappers, used by the sharding and cluster benchmark smokes.
WORKLOAD_NODE_COUNTS = (8, 10, 12, 15, 18, 20)
WORKLOAD_PROCESSES_PER_NODE = 24
WORKLOAD_MAPPERS = ("blocked", "hyperplane", "kd_tree", "stencil_strips")


def backend_workload(sweeps: int = 1) -> list[MappingRequest]:
    """A multi-instance request list exercising every backend the same way."""
    stencil = nearest_neighbor(2)
    requests = []
    for sweep in range(sweeps):
        for num_nodes in WORKLOAD_NODE_COUNTS:
            p = num_nodes * WORKLOAD_PROCESSES_PER_NODE
            grid = CartesianGrid(dims_create(p, 2))
            alloc = NodeAllocation.homogeneous(
                num_nodes, WORKLOAD_PROCESSES_PER_NODE
            )
            for name in WORKLOAD_MAPPERS:
                requests.append(
                    MappingRequest(
                        grid, stencil, alloc, name, tag=(sweep, num_nodes, name)
                    )
                )
    return requests


def result_signature(result):
    """The byte-identity contract every backend must reproduce."""
    return (
        result.request.tag,
        result.jsum,
        result.jmax,
        None if result.cost is None else result.cost.per_node.tobytes(),
    )


def _context(num_nodes: int) -> EvaluationContext:
    return EvaluationContext(num_nodes, 48, 2, mappers=DEFAULT_MAPPERS())


@pytest.fixture(scope="session")
def context_n50() -> EvaluationContext:
    """The Figure 6 / Tables II, IV, VI instance (grid 50 x 48)."""
    ctx = _context(50)
    _warm(ctx)
    return ctx


@pytest.fixture(scope="session")
def context_n100() -> EvaluationContext:
    """The Figure 7 / Tables III, V, VII instance (grid 75 x 64)."""
    ctx = _context(100)
    _warm(ctx)
    return ctx


def _warm(ctx: EvaluationContext) -> None:
    """Pre-compute all mappings so benchmarks measure evaluation only."""
    for family in ("nearest_neighbor", "nearest_neighbor_with_hops", "component"):
        for mapper in ctx.mapper_names():
            ctx.mapping(family, mapper)
