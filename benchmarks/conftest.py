"""Shared fixtures for the benchmark harness.

Every paper artefact (Figures 6-9, Tables II-VII) has one benchmark
module.  The pytest-benchmark timings measure this library's real cost
of regenerating the artefact; the artefact's *content* (scores, speedup
series, table rows) is printed to the report via ``--benchmark-*`` or by
running ``python -m repro.experiments <target>``.

Figure/table contexts are session-scoped: mappings are machine- and
size-independent, so they are computed once and shared.
"""

from __future__ import annotations

import pytest

from repro.experiments import EvaluationContext
from repro.experiments.context import DEFAULT_MAPPERS


def _context(num_nodes: int) -> EvaluationContext:
    return EvaluationContext(num_nodes, 48, 2, mappers=DEFAULT_MAPPERS())


@pytest.fixture(scope="session")
def context_n50() -> EvaluationContext:
    """The Figure 6 / Tables II, IV, VI instance (grid 50 x 48)."""
    ctx = _context(50)
    _warm(ctx)
    return ctx


@pytest.fixture(scope="session")
def context_n100() -> EvaluationContext:
    """The Figure 7 / Tables III, V, VII instance (grid 75 x 64)."""
    ctx = _context(100)
    _warm(ctx)
    return ctx


def _warm(ctx: EvaluationContext) -> None:
    """Pre-compute all mappings so benchmarks measure evaluation only."""
    for family in ("nearest_neighbor", "nearest_neighbor_with_hops", "component"):
        for mapper in ctx.mapper_names():
            ctx.mapping(family, mapper)
