"""Benchmark E3/E4: Figure 7 — scores and speedups at N = 100."""

import pytest

from repro.experiments import STENCIL_FAMILIES
from repro.experiments.figure7 import figure7_scores, figure7_speedups
from repro.experiments.throughput import FIGURE_MESSAGE_SIZES

MACHINES = ("VSC4", "SuperMUC-NG", "JUWELS")


def test_scores_n100(benchmark, context_n100):
    scores = benchmark(figure7_scores, context_n100)
    nn = scores["nearest_neighbor"]
    assert nn["blocked"] == (9622, 98)
    assert nn["hyperplane"] == (2802, 38)
    assert nn["nodecart"] == (3522, 38)
    comp = scores["component"]
    assert comp["kd_tree"] == (192, 2)
    assert comp["stencil_strips"] == (192, 2)


@pytest.mark.parametrize("machine", MACHINES)
@pytest.mark.parametrize("family", sorted(STENCIL_FAMILIES))
def test_speedups_n100(benchmark, context_n100, machine, family):
    series = benchmark(
        figure7_speedups,
        machine,
        family,
        context=context_n100,
        repetitions=50,
    )
    largest = FIGURE_MESSAGE_SIZES[-1]
    by = {m: {c.message_size: c for c in cells} for m, cells in series.items()}
    # Headline: mapping gains persist at 100 nodes.  The 1.3x floor (not
    # 1.5x) accommodates Hyperplane on the hops stencil, whose Jmax=198
    # equals Nodecart's in the paper's own score panel — a bottleneck
    # model can not credit it more (see EXPERIMENTS.md, deviation D2).
    for name in ("hyperplane", "kd_tree", "stencil_strips"):
        assert by[name][largest].speedup_over_blocked > 1.3, (machine, family)
    # the component stencil yields the largest speedups (paper: up to 16x)
    if family == "component":
        assert by["kd_tree"][largest].speedup_over_blocked > 3.0
