"""Benchmark E13: the Theorem IV.3 reduction pipeline.

Times the full yes-instance pipeline (solve, reduce, witness, exact
verification) on the paper's Figure 3 example and random instances.
"""

import numpy as np

from repro.nphard import (
    ThreeWayPartitionInstance,
    min_jsum_bruteforce,
    random_yes_instance,
    reduce_to_grid_partition,
    witness_mapping,
)


def _pipeline(items):
    inst = ThreeWayPartitionInstance(items)
    reduced = reduce_to_grid_partition(inst)
    witness = witness_mapping(inst)
    exact = min_jsum_bruteforce(
        reduced.grid, reduced.stencil, reduced.node_sizes, limit_vertices=30
    )
    return reduced, witness, exact


def test_paper_example_pipeline(benchmark):
    reduced, witness, exact = benchmark(_pipeline, [6, 3, 3, 2, 2, 2])
    assert witness is not None
    assert exact == reduced.bound == witness[2].jsum


def test_random_yes_instances(benchmark):
    rng = np.random.default_rng(123)
    instances = [
        random_yes_instance(rng, items_per_group=2, max_value=4).items
        for _ in range(5)
    ]

    def run_all():
        results = []
        for items in instances:
            reduced, witness, exact = _pipeline(items)
            results.append((reduced.bound, exact, witness[2].jsum))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for bound, exact, witness_jsum in results:
        assert exact <= bound
        assert witness_jsum >= exact
