"""Benchmark smoke: per-implementation kernel throughput + transport cost.

Times every registered kernel implementation on one realistic workload
(figure8-sized instance, a stacked batch of mappings) and writes the
per-impl throughput table to ``kernel-throughput.json`` (path
overridable via ``REPRO_KERNEL_BENCH_JSON``) — the CI kernels job
uploads it as a build artifact.  As everywhere in this repository the
pinned property is correctness: every implementation must be
bit-identical to ``"reference"`` on the benchmark workload itself, and
the shared-memory process transport must ship zero pickled edge-array
bytes per shard.
"""

from __future__ import annotations

import json
import os
import pickle
import time

import numpy as np

from repro import CartesianGrid, NodeAllocation, nearest_neighbor_with_hops
from repro.grid.dims import dims_create
from repro.grid.graph import communication_edges
from repro.kernels import REGISTRY, list_kernels

#: Figure8-sized instance: 20 nodes x 24 processes, hop stencil.
NUM_NODES = 20
PROCESSES_PER_NODE = 24
BATCH = 64
REPEATS = 5

ARTIFACT_ENV = "REPRO_KERNEL_BENCH_JSON"
DEFAULT_ARTIFACT = "kernel-throughput.json"


def _workload():
    p = NUM_NODES * PROCESSES_PER_NODE
    grid = CartesianGrid(dims_create(p, 2))
    stencil = nearest_neighbor_with_hops(2)
    alloc = NodeAllocation.homogeneous(NUM_NODES, PROCESSES_PER_NODE)
    edges = communication_edges(grid, stencil)
    rng = np.random.default_rng(29)
    perms = np.stack([rng.permutation(p) for _ in range(BATCH)]).astype(
        np.int64
    )
    return grid, stencil, alloc, edges, perms


def _best_of(repeats, fn):
    fn()  # warm-up (and JIT compile, where applicable)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_kernel_throughput_bit_identical_and_recorded():
    grid, stencil, alloc, edges, perms = _workload()
    node_of_ranks = alloc.node_of_ranks()
    rng = np.random.default_rng(31)
    edge_bytes = rng.uniform(64.0, 1 << 20, size=edges.shape[0])

    reference = REGISTRY.get("reference")
    ref_nodes = reference.scatter_nodes(perms, node_of_ranks)
    ref_cuts = reference.cut_counts(edges, ref_nodes, alloc.num_nodes)
    ref_weighted = reference.weighted_cut(
        edges, ref_nodes, alloc.num_nodes, edge_bytes
    )

    cells = BATCH * edges.shape[0]  # (row, edge) visits per kernel call
    report = {
        "instance": {
            "grid": list(grid.dims),
            "stencil": stencil.name,
            "edges": int(edges.shape[0]),
            "batch": BATCH,
            "num_nodes": NUM_NODES,
        },
        "implementations": {},
    }
    for name in list_kernels():
        impl = REGISTRY.get(name)
        nodes = impl.scatter_nodes(perms, node_of_ranks)
        cuts = impl.cut_counts(edges, nodes, alloc.num_nodes)
        weighted = impl.weighted_cut(
            edges, nodes, alloc.num_nodes, edge_bytes
        )
        # bit-identity on the benchmark workload itself
        assert nodes.tobytes() == ref_nodes.tobytes(), name
        assert cuts.tobytes() == ref_cuts.tobytes(), name
        assert weighted.tobytes() == ref_weighted.tobytes(), name

        scatter_s = _best_of(
            REPEATS, lambda: impl.scatter_nodes(perms, node_of_ranks)
        )
        cut_s = _best_of(
            REPEATS, lambda: impl.cut_counts(edges, nodes, alloc.num_nodes)
        )
        weighted_s = _best_of(
            REPEATS,
            lambda: impl.weighted_cut(
                edges, nodes, alloc.num_nodes, edge_bytes
            ),
        )
        report["implementations"][name] = {
            "description": impl.description,
            "scatter_seconds": scatter_s,
            "cut_counts_seconds": cut_s,
            "weighted_cut_seconds": weighted_s,
            "cut_cells_per_second": cells / cut_s if cut_s else None,
            "weighted_cells_per_second": (
                cells / weighted_s if weighted_s else None
            ),
        }

    path = os.environ.get(ARTIFACT_ENV, DEFAULT_ARTIFACT)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"\nkernel throughput written to {path}")
    for name, row in report["implementations"].items():
        print(
            f"  {name:>10}: cut {row['cut_cells_per_second']:.3e} cells/s, "
            f"weighted {row['weighted_cells_per_second']:.3e} cells/s"
        )
    assert set(report["implementations"]) == set(list_kernels())


def test_shared_transport_ships_zero_pickled_edge_bytes():
    """Acceptance: with edge sharing on, a shard's pickled payload plus
    its descriptors contain none of the edge-array bytes, and the
    per-shard transport cost is descriptor-sized, not array-sized."""
    from repro.engine import MappingRequest
    from repro.engine.backends import (
        _SharedEdgeExporter,
        instance_aligned_shards,
    )

    grid, stencil, alloc, edges, _ = _workload()
    requests = [
        MappingRequest(grid, stencil, alloc, name)
        for name in ("blocked", "hyperplane", "kd_tree", "stencil_strips")
    ]
    exporter = _SharedEdgeExporter()
    try:
        for shard in instance_aligned_shards(requests, 2):
            refs = exporter.refs_for(shard)
            payload = pickle.dumps(
                ([(i, request) for i, request in shard], refs)
            )
            assert edges.tobytes() not in payload
            assert len(payload) < edges.nbytes / 10, (
                f"shard payload {len(payload)}B should be descriptor-sized, "
                f"not comparable to the {edges.nbytes}B edge array"
            )
    finally:
        exporter.close()
