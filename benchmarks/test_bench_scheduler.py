"""Benchmark: the fair-share scheduler's queue hot path.

Every shard dispatch runs the weighted deficit-round-robin pop —
highest priority level, then the queued tenant with the smallest
``(share, seq)``, then heap order within the tenant — so its cost is
paid once per shard by every job in the service tier.  The pinned
properties are *fairness at scale* (with many tenants flooding
simultaneously, each consecutive window of dispatches covers every
tenant — no starvation) and *weight proportionality* (a weight-2
tenant drains twice as fast).  The benchmark clock measures the
enqueue+dispatch round trip for thousands of shards across many
tenants, the regime where the per-dispatch ``min()`` over tenants and
per-tenant heaps would show any accidental quadratic cost.
"""

from __future__ import annotations

import asyncio
from collections import Counter

from repro.engine.cluster.coordinator import Coordinator

N_TENANTS = 16
SHARDS_PER_TENANT = 250


def _run_round(share_weights: dict | None = None) -> list[str]:
    """Submit one flood per tenant, pop everything; dispatch order."""

    async def flood() -> list[str]:
        coord = Coordinator("127.0.0.1", 0, share_weights=share_weights)
        sink: asyncio.Queue = asyncio.Queue()
        for t in range(N_TENANTS):
            await coord.submit(
                [[("x", i)] for i in range(SHARDS_PER_TENANT)],
                sink,
                tenant=f"tenant-{t:02d}",
            )
        order = []
        async with coord._cond:
            while True:
                shard = coord._pop_shard()
                if shard is None:
                    break
                order.append(shard.job.tenant.name)
        return order

    return asyncio.run(flood())


def test_fair_share_dispatch_throughput(benchmark):
    order = benchmark(_run_round)
    assert len(order) == N_TENANTS * SHARDS_PER_TENANT

    # Fairness: every window of N_TENANTS consecutive dispatches serves
    # every tenant exactly once — a flooding tenant never owns a window.
    for start in range(0, len(order), N_TENANTS):
        window = order[start : start + N_TENANTS]
        assert len(set(window)) == len(window), (start, window)

    shards = len(order)
    seconds = benchmark.stats.stats.min if benchmark.stats else None
    benchmark.extra_info["tenants"] = N_TENANTS
    benchmark.extra_info["shards"] = shards
    if seconds:
        print(
            f"\nfair-share queue: {shards} shards / {N_TENANTS} tenants "
            f"in {seconds * 1e3:.1f} ms ({shards / seconds:.0f} dispatches/s)"
        )


def test_weighted_tenant_drains_proportionally():
    heavy, light = "tenant-00", "tenant-01"
    order = _run_round(share_weights={heavy: 2.0})
    # While both are backlogged, the weight-2 tenant receives twice the
    # dispatches: after 30 heavy dispatches it has banked share 15,
    # matching 15 light dispatches.
    head = order[: 3 * 45]
    counts = Counter(head)
    assert counts[heavy] > counts[light] * 3 // 2, counts
