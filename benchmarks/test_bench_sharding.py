"""Benchmark smoke: thread backend vs. process-sharded backend.

The acceptance workload of the backends subsystem: a figure8-style
multi-instance sweep executed through both backends.  The point being
pinned is *correctness under sharding* — byte-identical costs no matter
where the requests run — plus a timing report for the curious.  No
relative-speed assertion is made: whether processes beat threads depends
on core count (CI containers often expose a single CPU, where the
process pool's pickling overhead dominates).
"""

from __future__ import annotations

import time

from repro import EvaluationEngine, ProcessBackend, ThreadBackend

from .conftest import WORKLOAD_MAPPERS, WORKLOAD_NODE_COUNTS, backend_workload
from .conftest import result_signature as _signature

#: 6 distinct grids x 4 deterministic mappers x 3 sweeps = 72 evaluations.
SWEEPS = 3


def _workload():
    return backend_workload(sweeps=SWEEPS)


def test_thread_and_process_backends_agree(tmp_path):
    requests = _workload()
    reference = [
        _signature(r)
        for r in EvaluationEngine(max_workers=1).evaluate_batch(requests)
    ]

    timings = {}
    with ThreadBackend(max_workers=4) as thread_backend:
        start = time.perf_counter()
        thread_results = thread_backend.evaluate_batch(requests)
        timings["thread"] = time.perf_counter() - start
    assert [_signature(r) for r in thread_results] == reference

    with ProcessBackend(2, disk_cache_dir=tmp_path) as process_backend:
        start = time.perf_counter()
        process_results = process_backend.evaluate_batch(requests)
        timings["process"] = time.perf_counter() - start

        # streaming yields the same multiset of results
        streamed = sorted(
            _signature(r) for r in process_backend.evaluate_stream(requests)
        )
    assert [_signature(r) for r in process_results] == reference
    assert streamed == sorted(reference)

    # the workers published every instance's edges to the shared disk cache
    assert len(list(tmp_path.glob("edges-*.npy"))) == len(
        {r.instance_key for r in requests}
    )
    print(
        f"\nbackend timings on {len(requests)} requests: "
        + ", ".join(f"{k}={v * 1e3:.1f} ms" for k, v in timings.items())
    )


def test_process_backend_warm_disk_cache_skips_edge_rebuild(tmp_path):
    """A second backend pointed at the same cache dir reloads, not rebuilds."""
    requests = _workload()[: len(WORKLOAD_NODE_COUNTS) * len(WORKLOAD_MAPPERS)]
    with ProcessBackend(1, disk_cache_dir=tmp_path) as cold:
        cold.evaluate_batch(requests)
    stored = {p.name for p in tmp_path.glob("edges-*.npy")}
    assert len(stored) == len({r.instance_key for r in requests})
    with ProcessBackend(1, disk_cache_dir=tmp_path) as warm:
        warm.evaluate_batch(requests)
    # warm run added no new files (every instance was served from disk)
    assert {p.name for p in tmp_path.glob("edges-*.npy")} == stored
