"""Benchmark suite package (package form keeps conftest helpers importable)."""
