"""Benchmarks E14-E16: ablations of the paper's design choices.

Not figures from the paper, but quantifications of the ingredients its
Section V motivates: Equation 2 ordering, serpentine direction flipping
(Figure 5), distortion factors, plus the two model extensions
(stencil-aware Nodecart, topology-aware cost model).
"""

import pytest

from repro.experiments.ablations import (
    ablation_hyperplane_order,
    ablation_nodecart_stencil_aware,
    ablation_strips_distortion,
    ablation_strips_serpentine,
    ablation_topology_aware,
)


def test_ablation_hyperplane_order(benchmark):
    results = benchmark.pedantic(
        ablation_hyperplane_order, rounds=1, iterations=1
    )
    hops = results["nearest_neighbor_with_hops"]
    # Equation 2 ordering is load-bearing on the anisotropic stencil.
    assert hops.jsum_ratio > 1.05
    # On the isotropic NN stencil it must not hurt.
    assert results["nearest_neighbor"].jsum_ratio >= 0.999


def test_ablation_strips_serpentine(benchmark):
    results = benchmark.pedantic(
        ablation_strips_serpentine, rounds=1, iterations=1
    )
    assert all(r.jsum_ratio >= 1.0 for r in results.values())
    # Figure 5: incoherent partitions cost extra NN edges.
    assert results["nearest_neighbor"].jsum_ratio > 1.0


def test_ablation_strips_distortion(benchmark):
    results = benchmark.pedantic(
        ablation_strips_distortion, rounds=1, iterations=1
    )
    hops = results["nearest_neighbor_with_hops"]
    assert hops.jsum_ratio >= 1.0  # distortion helps the hops stencil
    # NN has alpha = 1: disabling distortion must change nothing.
    assert results["nearest_neighbor"].jsum_ratio == pytest.approx(1.0)


def test_ablation_nodecart_stencil_aware(benchmark):
    # On the 50 x 48 grid only two block factorisations exist, so
    # awareness cannot act; the 48-node instance (grid 48 x 48) has a
    # rich divisor structure where it does.
    results = benchmark.pedantic(
        ablation_nodecart_stencil_aware,
        kwargs={"num_nodes": 48},
        rounds=1,
        iterations=1,
    )
    # Awareness can only help; on the component stencil it should
    # strictly reduce the cut.
    assert results["component"].jsum_ratio < 1.0
    assert results["nearest_neighbor"].jsum_ratio == pytest.approx(1.0)


def test_ablation_topology_aware(benchmark):
    out = benchmark.pedantic(
        ablation_topology_aware,
        args=("SuperMUC-NG",),
        kwargs={"num_nodes": 50},
        rounds=1,
        iterations=1,
    )
    for mapper, times in out.items():
        assert times["topology_aware"] >= times["flat"], mapper
